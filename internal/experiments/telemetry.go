package experiments

import (
	"bufio"
	"fmt"
	"os"

	"dtl/internal/core"
	"dtl/internal/sim"
	"dtl/internal/telemetry"
)

// runTelemetry wires a metrics registry (and, for DTL-driven runs, the event
// tracer) to the files requested in Options. A nil *runTelemetry is valid and
// makes every method a no-op, so experiment loops call tick/finish
// unconditionally and pay nothing when -trace/-metrics are off.
type runTelemetry struct {
	tracePath   string
	metricsPath string

	d    *core.DTL // nil for registry-only runs (no tracer source)
	reg  *telemetry.Registry
	tr   *telemetry.Tracer
	eng  *sim.Engine
	stop func()

	// Metrics stream to the CSV file as rows are sampled (O(1) memory over
	// any horizon) rather than accumulating in the registry until finish.
	metricsFile *os.File
	metricsBuf  *bufio.Writer
	stream      *telemetry.StreamSampler
	metricsErr  error // deferred os.Create failure, reported at finish
}

// telemetryFor attaches tracing and periodic metrics sampling to d per the
// Options, or returns nil when neither was requested. defaultPeriod is the
// experiment's natural sampling granularity, used when the caller did not
// set SamplePeriod explicitly (horizons range from milliseconds of replay
// to six hours of schedule, so no single default fits all runs).
func (o Options) telemetryFor(d *core.DTL, defaultPeriod sim.Time) *runTelemetry {
	if o.TracePath == "" && o.MetricsPath == "" {
		return nil
	}
	rt := &runTelemetry{
		tracePath:   o.TracePath,
		metricsPath: o.MetricsPath,
		d:           d,
		reg:         d.Registry(),
		eng:         sim.NewEngine(),
	}
	if o.TracePath != "" {
		rt.tr = d.StartTrace(0, 0)
	}
	rt.startSampling(o, defaultPeriod)
	return rt
}

// telemetryForRegistry attaches periodic metrics sampling to a bare registry
// for the experiments that have no DTL (fig1's schedule gauges, fig2/fig5's
// raw controller replays). TracePath is ignored here: there is no tracer
// source without a DTL, and Options documents which experiments honor it.
func (o Options) telemetryForRegistry(reg *telemetry.Registry, defaultPeriod sim.Time) *runTelemetry {
	if o.MetricsPath == "" {
		return nil
	}
	rt := &runTelemetry{
		metricsPath: o.MetricsPath,
		reg:         reg,
		eng:         sim.NewEngine(),
	}
	rt.startSampling(o, defaultPeriod)
	return rt
}

func (rt *runTelemetry) startSampling(o Options, defaultPeriod sim.Time) {
	if rt.metricsPath == "" {
		return
	}
	period := o.SamplePeriod
	if period <= 0 {
		period = defaultPeriod
	}
	f, err := os.Create(rt.metricsPath)
	if err != nil {
		rt.metricsErr = err
		return
	}
	rt.metricsFile = f
	rt.metricsBuf = bufio.NewWriter(f)
	rt.stream = rt.reg.StreamTo(rt.metricsBuf)
	rt.stop = rt.stream.Start(rt.eng, period)
}

// tick advances the sampling clock to now, firing any due interval timers.
func (rt *runTelemetry) tick(now sim.Time) {
	if rt == nil {
		return
	}
	rt.eng.RunUntil(now)
}

// finish closes the trace at horizon, detaches it from the device, and
// writes the requested output files.
func (rt *runTelemetry) finish(horizon sim.Time) error {
	if rt == nil {
		return nil
	}
	rt.tick(horizon)
	if rt.stop != nil {
		rt.stop()
	}
	if rt.tr != nil {
		rt.tr.Finish(horizon)
		rt.d.AttachTracer(nil)
		if err := writeTo(rt.tracePath, func(f *os.File) error {
			return telemetry.WriteChromeTrace(f, rt.tr)
		}); err != nil {
			return fmt.Errorf("experiments: writing trace: %w", err)
		}
	}
	if rt.metricsPath != "" {
		if err := rt.closeMetrics(); err != nil {
			return fmt.Errorf("experiments: writing metrics: %w", err)
		}
	}
	return nil
}

// closeMetrics finalizes the streamed CSV: the header is forced out even if
// no sample fired (so the file is always well-formed), the write buffer is
// flushed, and the file closed. The first error anywhere in the chain wins.
func (rt *runTelemetry) closeMetrics() error {
	if rt.metricsErr != nil {
		return rt.metricsErr
	}
	err := rt.stream.Finish()
	if ferr := rt.metricsBuf.Flush(); err == nil {
		err = ferr
	}
	if cerr := rt.metricsFile.Close(); err == nil {
		err = cerr
	}
	return err
}

func writeTo(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// withoutTelemetry clears the telemetry outputs; used by experiments that
// run the same schedule several times so only the headline run writes files.
func (o Options) withoutTelemetry() Options {
	o.TracePath = ""
	o.MetricsPath = ""
	return o
}
