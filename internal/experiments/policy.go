package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"dtl/internal/core"
	"dtl/internal/sim"
)

// Policy is the set of power-policy overrides an A/B run may apply on top of
// an experiment's baseline configuration. It is the parsed form of the
// `-policy` flag (dtlsim) and the `policy` field of a served job spec, so
// both entry points accept exactly the same grammar. The zero value applies
// nothing.
type Policy struct {
	// Reserve overrides core.Config.ReserveRankGroups for the power-down
	// schedule experiments (fig12/fig13/fig15/faults): the free rank-group
	// headroom the allocator keeps before a group may power down.
	Reserve int
	// ProfilingWindow / ProfilingThreshold override the hotness engine's
	// victim-selection window and required victim idle time (§3.4). They
	// apply wherever the engine runs — including fig14/fig15's time-dilated
	// replays, where the override replaces the dilated default verbatim.
	ProfilingWindow    sim.Time
	ProfilingThreshold sim.Time
	// SRMinStandby overrides core.Config.SelfRefreshMinStandby, the
	// self-refresh enter policy: standby ranks a channel must retain after
	// a victim enters self-refresh.
	SRMinStandby int
}

// IsZero reports whether the policy applies no overrides.
func (p Policy) IsZero() bool { return p == Policy{} }

// ParsePolicy parses semicolon-separated key=value policy overrides:
//
//	reserve=N        free rank-group headroom before power-down (int >= 1)
//	window=DUR       hotness profiling window (Go duration, e.g. 500us)
//	threshold=DUR    hotness victim idle threshold (Go duration, e.g. 50ms)
//	srmin=N          standby ranks kept per channel after SR entry (int >= 1)
//
// Unknown keys are an error, never ignored: a typo must not silently run the
// baseline policy.
func ParsePolicy(s string) (Policy, error) {
	var p Policy
	if s == "" {
		return p, nil
	}
	for _, kv := range strings.Split(s, ";") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Policy{}, fmt.Errorf("bad policy entry %q: want key=value", kv)
		}
		switch key {
		case "reserve":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Policy{}, fmt.Errorf("bad policy reserve %q: want an integer >= 1", val)
			}
			p.Reserve = n
		case "window":
			d, err := parsePolicyDuration(val)
			if err != nil {
				return Policy{}, fmt.Errorf("bad policy window %q: %v", val, err)
			}
			p.ProfilingWindow = d
		case "threshold":
			d, err := parsePolicyDuration(val)
			if err != nil {
				return Policy{}, fmt.Errorf("bad policy threshold %q: %v", val, err)
			}
			p.ProfilingThreshold = d
		case "srmin":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Policy{}, fmt.Errorf("bad policy srmin %q: want an integer >= 1", val)
			}
			p.SRMinStandby = n
		default:
			return Policy{}, fmt.Errorf("unknown policy key %q (known: reserve, window, threshold, srmin)", key)
		}
	}
	return p, nil
}

func parsePolicyDuration(val string) (sim.Time, error) {
	d, err := time.ParseDuration(val)
	if err != nil {
		return 0, fmt.Errorf("want a duration like 500us")
	}
	if d <= 0 {
		return 0, fmt.Errorf("want a positive duration")
	}
	return sim.Time(d.Nanoseconds()), nil
}

// apply lays every override onto cfg. Used by the power-down schedule
// experiments, where all four knobs are meaningful.
func (p Policy) apply(cfg *core.Config) {
	if p.Reserve > 0 {
		cfg.ReserveRankGroups = p.Reserve
	}
	p.applyHotness(cfg)
}

// applyHotness lays only the hotness-engine overrides onto cfg. The
// self-refresh experiments (fig14/fig15) pin ReserveRankGroups per
// configuration — it IS the experiment's independent variable — so the
// reserve knob must not clobber it there.
func (p Policy) applyHotness(cfg *core.Config) {
	if p.ProfilingWindow > 0 {
		cfg.ProfilingWindow = p.ProfilingWindow
	}
	if p.ProfilingThreshold > 0 {
		cfg.ProfilingThreshold = p.ProfilingThreshold
	}
	if p.SRMinStandby > 0 {
		cfg.SelfRefreshMinStandby = p.SRMinStandby
	}
}
