package experiments

import (
	"errors"
	"fmt"
	"sort"

	"dtl/internal/core"
	"dtl/internal/cxl"
	"dtl/internal/dram"
	"dtl/internal/fault"
	"dtl/internal/metrics"
	"dtl/internal/power"
	"dtl/internal/sim"
	"dtl/internal/trace"
	"dtl/internal/vmtrace"
)

// pdGeometry is the power-down evaluation device: 384 GiB behind 4 channels
// x 8 ranks (the paper uses 384 GB of a 1 TB machine and scales standby
// power proportionally; we size the ranks to 12 GiB for the same effect).
func pdGeometry() dram.Geometry {
	return dram.Geometry{
		Channels:        4,
		RanksPerChannel: 8,
		BanksPerRank:    16,
		SegmentBytes:    2 * dram.MiB,
		RankBytes:       12 * dram.GiB,
	}
}

// vmBandwidthGBs estimates a VM's memory bandwidth demand from its vCPU
// count and workload MAPKI: vcpus x 2 GHz x IPC 1 x MAPKI/1000 x 64 B.
func vmBandwidthGBs(vm vmtrace.VM) float64 {
	mapki := 2.5 // mixed CloudSuite default
	if vm.Workload != "" {
		if p, err := trace.ProfileByName(vm.Workload); err == nil {
			mapki = p.MAPKI
		}
	}
	return float64(vm.VCPUs) * 2.0 * mapki / 1000.0 * 64.0
}

// pdRun is the shared 6-hour simulation behind Figures 12 and 13.
type pdRun struct {
	horizon sim.Time

	baseBGEnergy float64 // baseline background energy (units x ns)
	techBGEnergy float64
	activeEnergy float64 // identical foreground active energy in both runs
	migEnergy    float64 // extra migration energy (technique only)

	meanActiveRanks float64
	maxActiveRanks  int
	samples         []power.Sample // technique timeline
	migrationSpans  int            // intervals with migration activity
	perfOverhead    float64
	bytesMigrated   int64
	probeLatNs      int64 // summed latency of health-plane degraded probes
	degradedProbes  int   // probes issued against failed-but-live ranks

	// Reliability outcomes, populated when Options.FaultSpec is set.
	faultStats    fault.Stats
	shedVMs       int // allocations refused under degraded capacity
	probeFailures int // end-of-run read probes that failed (must stay 0)
	retiredRanks  int
	migStats      core.MigStats
	health        map[string]float64 // core.health.* counter snapshot
}

func runPowerDownSchedule(o Options) pdRun {
	g := pdGeometry()
	cfg := core.DefaultConfig(g)
	o.Policy.apply(&cfg)
	d, err := core.New(cfg)
	if err != nil {
		panic(err)
	}

	workloads := make([]string, 0, 10)
	for _, p := range trace.CloudSuite() {
		workloads = append(workloads, p.Name)
	}
	genCfg := vmtrace.DefaultGenConfig()
	genCfg.Seed = o.Seed
	genCfg.NumVMs = o.scaled(400, 120)
	genCfg.Workloads = workloads
	vms := vmtrace.Generate(genCfg)
	srv := vmtrace.Server{VCPUs: 48, MemBytes: g.TotalBytes()}
	events, _, err := vmtrace.Schedule(vms, srv, genCfg.Horizon)
	if err != nil {
		panic(err)
	}

	run := pdRun{horizon: genCfg.Horizon}
	rt := o.telemetryFor(d, vmtrace.Interval, genCfg.Horizon)

	// With a fault spec, a seeded injector drives device faults on its own
	// virtual-time engine, advanced in lockstep with the schedule clock; the
	// health monitor (driven from d.Tick below) closes the loop by retiring
	// degraded ranks. Allocation then degrades gracefully: requests the
	// shrunken capacity cannot hold are shed, not fatal.
	var inj *fault.Injector
	var feng *sim.Engine
	if o.FaultSpec != "" {
		spec, err := fault.Parse(o.FaultSpec)
		if err != nil {
			panic(err)
		}
		feng = sim.NewEngine()
		inj, err = fault.NewInjector(spec, d.Device(), feng)
		if err != nil {
			panic(err)
		}
		inj.Start(genCfg.Horizon)
	}
	shed := map[core.VMID]bool{}
	// A patrol-scrub budget sized to cover the device roughly once per hour.
	scrubPerInterval := int(g.TotalSegments() * int64(vmtrace.Interval) / int64(sim.Hour))

	pm := d.Device().Power()
	meter := power.NewMeter(pm)
	live := map[core.VMID]vmtrace.VM{}
	var liveIDs []core.VMID // reused scratch for deterministic iteration
	ei := 0
	var rankSum float64
	var intervals int
	var prevMigBytes int64

	for t := sim.Time(0); t <= genCfg.Horizon; t += vmtrace.Interval {
		o.checkCanceled()
		if feng != nil {
			feng.RunUntil(t)
			// Health-plane probe: one read per failed rank still holding live
			// data, BEFORE the event loop and Tick can drain and retire it (a
			// departure's DeallocateVM already processes deferred retirements)
			// — so the attribution ledger observes the degraded-read penalty
			// the tenants are paying.
			if n, lat := d.ProbeDegraded(t); n > 0 {
				run.degradedProbes += n
				run.probeLatNs += int64(lat)
			}
		}
		for ei < len(events) && events[ei].At <= t {
			ev := events[ei]
			ei++
			id := core.VMID(ev.VM.ID)
			if ev.Depart {
				if shed[id] {
					delete(shed, id) // never admitted; nothing to release
					continue
				}
				if err := d.DeallocateVM(id, t); err != nil {
					panic(err)
				}
				delete(live, id)
			} else {
				if _, err := d.AllocateVM(id, core.HostID(ev.VM.ID%cfg.MaxHosts), ev.VM.MemBytes, t); err != nil {
					if inj != nil && errors.Is(err, core.ErrOutOfCapacity) {
						run.shedVMs++
						shed[id] = true
						continue
					}
					panic(err)
				}
				live[id] = ev.VM
			}
		}
		if inj != nil {
			d.Tick(t) // completes migrations and drives deferred retirements
			if _, err := d.Scrubber().Run(t, scrubPerInterval); err != nil {
				panic(fmt.Sprintf("experiments: scrub at %v: %v", t, err))
			}
		}

		// Sum in VM-id order: float addition is not associative, so a map
		// iteration here would let rounding differ between identical runs.
		liveIDs = liveIDs[:0]
		for id := range live {
			liveIDs = append(liveIDs, id)
		}
		sort.Slice(liveIDs, func(i, j int) bool { return liveIDs[i] < liveIDs[j] })
		var bw float64
		for _, id := range liveIDs {
			bw += vmBandwidthGBs(live[id])
		}
		bg := d.Device().BackgroundPowerNow()
		migBytes := d.Stats().BytesMigrated
		migrating := migBytes > prevMigBytes
		if migrating {
			run.migrationSpans++
		}
		prevMigBytes = migBytes
		meter.Record(t, bg, pm.Active(bw), migrating)

		active := d.ActiveRanksPerChannel()
		rankSum += float64(active)
		if active > run.maxActiveRanks {
			run.maxActiveRanks = active
		}
		intervals++
		rt.tick(t)
	}
	if inj != nil {
		// Zero-data-loss check: every surviving VM's memory must still be
		// addressable and readable (retired ranks were drained; a failed rank
		// not yet drained still serves reads in degraded mode).
		// Probe in VM-id order: Access has model side effects (SMC fills,
		// self-refresh wakes), so map order here would leak into the trace.
		liveIDs = liveIDs[:0]
		for id := range live {
			liveIDs = append(liveIDs, id)
		}
		sort.Slice(liveIDs, func(i, j int) bool { return liveIDs[i] < liveIDs[j] })
		for _, id := range liveIDs {
			addrs, err := d.VMAddresses(id)
			if err != nil {
				panic(err)
			}
			for _, a := range addrs {
				res, err := d.Access(a, false, genCfg.Horizon)
				if err != nil {
					run.probeFailures++
					continue
				}
				run.probeLatNs += int64(res.TotalLat())
			}
		}
		if err := d.CheckInvariants(); err != nil {
			panic(fmt.Sprintf("experiments: invariants violated after fault run: %v", err))
		}
		run.faultStats = inj.Stats()
		run.retiredRanks = len(d.RetiredRanks())
		run.migStats = d.Migrator().Stats()
		run.health = map[string]float64{}
		for _, name := range []string{"storms", "auto_retires", "retires_deferred",
			"retire_retries", "retires_abandoned", "fault_events"} {
			v, _ := d.Registry().Value("core.health." + name)
			run.health[name] = v
		}
	}
	if err := rt.finish(genCfg.Horizon); err != nil {
		panic(err)
	}
	meter.FinishAt(genCfg.Horizon)
	d.Device().AccountUpTo(genCfg.Horizon)

	st, sr, mp := d.Device().BackgroundEnergy()
	run.techBGEnergy = st + sr + mp
	run.baseBGEnergy = float64(g.TotalRanks()) * pm.StandbyPower * float64(genCfg.Horizon)
	_, act, _ := meter.Energy()
	run.activeEnergy = act
	// Migration energy: moving B bytes at any bandwidth W costs
	// slope*W power for B/W ns, i.e. slope*B units x ns regardless of W.
	run.bytesMigrated = d.Stats().BytesMigrated
	run.migEnergy = pm.ActivePowerPerGBs * float64(run.bytesMigrated)
	run.meanActiveRanks = rankSum / float64(intervals)
	run.samples = meter.Samples()

	// Performance overhead of the technique (§5.1 method): channel-only
	// mapping on the mean active-rank configuration versus the
	// rank-interleaved 8-rank baseline, plus the DTL translation overhead.
	run.perfOverhead = measurePerfOverhead(o, int(run.meanActiveRanks+0.5))
	return run
}

// measurePerfOverhead replays a short CloudSuite mix on the baseline
// (8 ranks, rank-interleaved) and the technique configuration (fewer
// ranks, channel-only mapping) and adds the 0.18% translation overhead the
// AMAT analysis yields (§6.1).
func measurePerfOverhead(o Options, activeRanks int) float64 {
	if activeRanks < 1 {
		activeRanks = 1
	}
	n := o.scaled(400_000, 80_000)
	profiles := fig2Profiles(true) // small footprints fit every config
	base := replayController(dram.Geometry{
		Channels: 4, RanksPerChannel: 8, BanksPerRank: 16,
		SegmentBytes: 2 * dram.MiB, RankBytes: 32 * dram.GiB,
	}, true, cxl.CXLMemoryLatency, profiles, n, o.Seed, nil, o.Shards)
	tech := replayController(dram.Geometry{
		Channels: 4, RanksPerChannel: activeRanks, BanksPerRank: 16,
		SegmentBytes: 2 * dram.MiB, RankBytes: 32 * dram.GiB,
	}, false, cxl.CXLMemoryLatency, profiles, n, o.Seed, nil, o.Shards)
	const translationOverhead = 0.0018
	return tech.execTime()/base.execTime() - 1 + translationOverhead
}

// Fig12 reproduces the headline power-down result: runtime DRAM power over
// the 6-hour VM schedule (a) and a 31.6% DRAM energy reduction at a 1.6%
// performance cost (b).
func Fig12(o Options) Result {
	res := newResult("Fig12", "Rank-level power-down over the 6-hour schedule",
		"31.6% DRAM energy reduction at 1.6% performance cost")
	w := o.out()
	res.header(w)

	run := runPowerDownSchedule(o)

	if f := o.csvFile("fig12_power_timeline"); f != nil {
		fmt.Fprintln(f, "minute,background,active,total,migrating")
		for _, s := range run.samples {
			mig := 0
			if s.Migrating {
				mig = 1
			}
			fmt.Fprintf(f, "%d,%.3f,%.3f,%.3f,%d\n",
				int64(s.At/sim.Minute), s.Background, s.Active, s.Total(), mig)
		}
		f.Close()
	}

	fmt.Fprintln(w, "(a) runtime DRAM power (technique), one row per 30 minutes")
	tab := metrics.NewTable("time", "background", "active", "total", "migrating")
	for i, s := range run.samples {
		if i%6 != 0 {
			continue
		}
		mig := ""
		if s.Migrating {
			mig = "yes"
		}
		tab.AddRowf("%dmin\t%.1f\t%.1f\t%.1f\t%s",
			int64(s.At/sim.Minute), s.Background, s.Active, s.Total(), mig)
	}
	tab.Render(w)

	baseTotal := run.baseBGEnergy + run.activeEnergy
	techTotal := run.techBGEnergy + run.activeEnergy + run.migEnergy
	saving := 1 - techTotal/baseTotal

	fmt.Fprintf(w, "\n(b) energy: baseline %.3g, technique %.3g units-s\n",
		baseTotal/1e9, techTotal/1e9)
	fmt.Fprintf(w, "energy saving %s (paper: 31.6%%), perf overhead %s (paper: 1.6%%)\n",
		pct(saving), pct(run.perfOverhead))
	fmt.Fprintf(w, "mean active ranks/channel %.2f of 8; %s migrated across %d intervals\n",
		run.meanActiveRanks, dram.FormatBytes(run.bytesMigrated), run.migrationSpans)

	res.Metrics["energy_saving"] = saving
	res.Metrics["perf_overhead"] = run.perfOverhead
	res.Metrics["mean_active_ranks"] = run.meanActiveRanks
	res.footer(w)
	return res
}

// Fig13 reproduces the power breakdown: background power reduced by ~35.3%,
// total power by ~32.7%, with active power nearly unchanged.
func Fig13(o Options) Result {
	res := newResult("Fig13", "DRAM power breakdown",
		"background power -35.3%, total power -32.7%; active power roughly unchanged")
	w := o.out()
	res.header(w)

	run := runPowerDownSchedule(o)
	b := power.Breakdown{
		BaselineBackground: run.baseBGEnergy,
		BaselineActive:     run.activeEnergy,
		TechBackground:     run.techBGEnergy,
		TechActive:         run.activeEnergy + run.migEnergy,
	}

	tab := metrics.NewTable("component", "baseline (units-s)", "power-down (units-s)", "reduction")
	tab.AddRowf("background\t%.3g\t%.3g\t%s",
		b.BaselineBackground/1e9, b.TechBackground/1e9, pct(b.BackgroundSaving()))
	tab.AddRowf("active\t%.3g\t%.3g\t%s",
		b.BaselineActive/1e9, b.TechActive/1e9, pct(1-b.TechActive/b.BaselineActive))
	tab.AddRowf("total\t%.3g\t%.3g\t%s",
		(b.BaselineBackground+b.BaselineActive)/1e9,
		(b.TechBackground+b.TechActive)/1e9, pct(b.TotalSaving()))
	tab.Render(w)

	res.Metrics["background_saving"] = b.BackgroundSaving()
	res.Metrics["total_saving"] = b.TotalSaving()
	res.footer(w)
	return res
}
