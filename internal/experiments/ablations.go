package experiments

import (
	"fmt"

	"dtl/internal/core"
	"dtl/internal/cxl"
	"dtl/internal/dram"
	"dtl/internal/metrics"
	"dtl/internal/sim"
	"dtl/internal/trace"
)

// Ablations sweep the design choices the paper fixes (§4.1 segment size,
// §3.2 SMC sizing, §3.4 profiling threshold and TSP timeout, §3.3
// rank-group granularity) and quantify why the paper's choice sits where
// it does. They are registered as experiments (abl-*) and reused by the
// benchmark harness.

// AblationSegmentSize sweeps the translation granularity: smaller segments
// expose more cold capacity (good for self-refresh) but inflate the
// mapping-table and migration-table footprint (Table 5's trade-off).
func AblationSegmentSize(o Options) Result {
	res := newResult("AblSegSize", "Segment size vs cold share and metadata cost",
		"§4.1 picks 2MB: cold share close to 1MB's at a quarter of 1MB's metadata")
	w := o.out()
	res.header(w)

	n := o.scaled(400_000, 100_000)
	p, err := trace.ProfileByName("data-analytics")
	if err != nil {
		panic(err)
	}
	p.FootprintBytes = 1 << 30

	tab := metrics.NewTable("segment", "cold share", "mapping tables (1TB device)")
	for _, segMB := range []int64{1, 2, 4, 8} {
		g := trace.MustGenerator(p, o.Seed)
		cold := trace.ColdFraction(g.Next, n, p.FootprintBytes, segMB<<20, 10_000_000)

		geom := dram.Default1TB()
		geom.SegmentBytes = segMB << 20
		cfg := core.DefaultConfig(geom)
		sizes := cfg.Sizes()
		meta := sizes.TotalSRAM() + sizes.TotalDRAM()

		tab.AddRowf("%dMB\t%s\t%s", segMB, pct(cold), dram.FormatBytes(meta))
		res.Metrics[fmt.Sprintf("cold_%dmb", segMB)] = cold
		res.Metrics[fmt.Sprintf("meta_bytes_%dmb", segMB)] = float64(meta)
	}
	tab.Render(w)
	res.footer(w)
	return res
}

// AblationSMC sweeps the segment mapping cache sizing and reports the
// average translation latency each yields under a mixed workload.
func AblationSMC(o Options) Result {
	res := newResult("AblSMC", "Segment mapping cache sizing",
		"the 64-entry L1 + 1024-entry L2 point keeps translation in single-digit ns")
	w := o.out()
	res.header(w)

	n := o.scaled(400_000, 60_000)
	configs := []struct {
		name   string
		l1, l2 int
		paper  bool // the paper's sizing gets the -trace/-metrics outputs
	}{
		{"16/256", 16, 256, false},
		{"64/1024 (paper)", 64, 1024, true},
		{"256/4096", 256, 4096, false},
	}
	tab := metrics.NewTable("L1/L2 entries", "L1 miss", "L2 miss", "translation")
	for _, sc := range configs {
		geom := dram.Geometry{
			Channels: 4, RanksPerChannel: 8, BanksPerRank: 16,
			SegmentBytes: 2 * dram.MiB, RankBytes: 2 * dram.GiB,
		}
		cfg := core.DefaultConfig(geom)
		cfg.L1SMCEntries = sc.l1
		cfg.L2SMCEntries = sc.l2
		d, err := core.New(cfg)
		if err != nil {
			panic(err)
		}
		p, _ := trace.ProfileByName("data-caching")
		p.FootprintBytes = 8 << 30
		g := trace.MustGenerator(p, o.Seed)
		alloc, err := d.AllocateVM(1, 0, p.FootprintBytes, 0)
		if err != nil {
			panic(err)
		}
		var rt *runTelemetry
		if sc.paper {
			rt = o.telemetryFor(d, 50*sim.Microsecond, 0)
		}
		now := sim.Time(0)
		for i := 0; i < n; i++ {
			a := g.Next()
			if _, err := d.Access(alloc.AUBases[0]+dram.HPA(a.Addr), a.Write, now); err != nil {
				panic(err)
			}
			now += 5
			rt.tick(now)
		}
		if err := rt.finish(now); err != nil {
			panic(err)
		}
		st := d.SMCStats()
		m := core.AMATFromConfig(cfg, cxl.CXLMemoryLatency, st)
		tab.AddRowf("%s\t%s\t%s\t%s", sc.name,
			pct(st.L1MissRatio()), pct(st.L2MissRatio()), nsT(m.Translation()))
		key := fmt.Sprintf("translation_ns_%dx%d", sc.l1, sc.l2)
		res.Metrics[key] = m.Translation()
	}
	tab.Render(w)
	res.footer(w)
	return res
}

// srPoint is one sweep point's outcome from ablSelfRefreshRun.
type srPoint struct {
	enters, swapped int64
	duty            float64
}

// ablSelfRefreshRun exercises the hotness engine under one parameter set
// and reports self-refresh entries, swaps and the SR duty achieved. When o
// carries -trace/-metrics paths the run is instrumented; sweep callers pass
// o.withoutTelemetry() for every point but the paper's, so the output files
// describe a single well-defined configuration.
func ablSelfRefreshRun(o Options, threshold sim.Time, tspEntries int, n int) (enters, swapped int64, duty float64) {
	geom := dram.Geometry{
		Channels: 4, RanksPerChannel: 4, BanksPerRank: 16,
		SegmentBytes: 2 * dram.MiB, RankBytes: 256 * dram.MiB,
	}
	cfg := core.DefaultConfig(geom)
	cfg.AUBytes = 64 * dram.MiB
	cfg.ProfilingWindow = 20_000
	cfg.ProfilingThreshold = threshold
	cfg.TSPTimeoutEntries = tspEntries
	d, err := core.New(cfg)
	if err != nil {
		panic(err)
	}
	p, _ := trace.ProfileByName("data-caching")
	p.FootprintBytes = 1792 << 20
	p.HotBias = 0.99
	p.UntouchedFraction = 0.5
	g := trace.MustGenerator(p, o.Seed)
	alloc, err := d.AllocateVM(1, 0, p.FootprintBytes, 0)
	if err != nil {
		panic(err)
	}
	d.Hotness().Enable(0)
	rt := o.telemetryFor(d, 100*sim.Microsecond, 0)
	now := sim.Time(0)
	for i := 0; i < n; i++ {
		a := g.Next()
		if _, err := d.Access(alloc.AUBases[0]+dram.HPA(a.Addr), a.Write, now); err != nil {
			panic(err)
		}
		now += 2
		rt.tick(now)
	}
	d.Tick(now)
	if err := rt.finish(now); err != nil {
		panic(err)
	}
	dev := d.Device()
	dev.AccountUpTo(now)
	_, srE, _ := dev.BackgroundEnergy()
	activeRanks := float64(d.ActiveRanksPerChannel() * geom.Channels)
	duty = srE / 0.2 / float64(now) / activeRanks
	return d.Stats().SelfRefreshEnters, d.Stats().SegmentsSwapped, duty
}

// AblationProfilingThreshold sweeps the §3.4 idle threshold: lower
// thresholds enter self-refresh eagerly (more entries, more migration);
// higher ones suppress migration but also give up savings.
func AblationProfilingThreshold(o Options) Result {
	res := newResult("AblThreshold", "Profiling idle threshold",
		"§3.4's threshold balances migration churn against time spent in self-refresh")
	w := o.out()
	res.header(w)

	n := o.scaled(1_500_000, 600_000)
	thresholds := []sim.Time{50_000, 100_000, 400_000}
	points := sweepPoints(thresholds, o.Parallel, func(thr sim.Time) srPoint {
		po := o
		if thr != 100_000 { // only the paper's threshold writes -trace/-metrics
			po = o.withoutTelemetry()
		}
		enters, swapped, duty := ablSelfRefreshRun(po, thr, 32, n)
		return srPoint{enters: enters, swapped: swapped, duty: duty}
	})
	tab := metrics.NewTable("threshold", "SR enters", "segments swapped", "SR duty")
	for i, thr := range thresholds {
		p := points[i]
		tab.AddRowf("%v\t%d\t%d\t%s", thr, p.enters, p.swapped, pct(p.duty))
		res.Metrics[fmt.Sprintf("sr_enters_%dus", int64(thr)/1000)] = float64(p.enters)
		res.Metrics[fmt.Sprintf("swapped_%dus", int64(thr)/1000)] = float64(p.swapped)
	}
	tab.Render(w)
	res.footer(w)
	return res
}

// AblationTSPTimeout sweeps the CLOCK-walk budget (the 40ns TSP timeout of
// §3.4 expressed as entries inspected per walk): starving the walk slows
// cold-set collection.
func AblationTSPTimeout(o Options) Result {
	res := newResult("AblTSP", "TSP walk budget",
		"too small a budget starves cold-candidate discovery; the paper's 40ns suffices")
	w := o.out()
	res.header(w)

	n := o.scaled(1_500_000, 600_000)
	budgets := []int{4, 32, 256}
	points := sweepPoints(budgets, o.Parallel, func(budget int) srPoint {
		po := o
		if budget != 32 { // only the paper's budget writes -trace/-metrics
			po = o.withoutTelemetry()
		}
		enters, _, duty := ablSelfRefreshRun(po, 100_000, budget, n)
		return srPoint{enters: enters, duty: duty}
	})
	tab := metrics.NewTable("budget (entries)", "SR enters", "SR duty")
	for i, budget := range budgets {
		p := points[i]
		tab.AddRowf("%d\t%d\t%s", budget, p.enters, pct(p.duty))
		res.Metrics[fmt.Sprintf("sr_enters_b%d", budget)] = float64(p.enters)
	}
	tab.Render(w)
	res.footer(w)
	return res
}

// AblationRankGroup compares power-down at rank-group granularity (the
// paper's choice) against hypothetical per-rank power-down: per-rank saves
// slightly more background power but leaves channels with unequal active
// capacity, breaking the per-VM bandwidth guarantee of §3.3.
func AblationRankGroup(o Options) Result {
	res := newResult("AblRankGroup", "Rank-group vs per-rank power-down",
		"§3.3 powers down whole rank groups to keep per-VM channel bandwidth balanced")
	w := o.out()
	res.header(w)

	g := dram.Default1TB()
	pm := dram.DefaultPowerModel()
	// Sweep unallocated capacity; compare how many ranks each policy idles.
	tab := metrics.NewTable("free ranks' worth", "groups off (ranks)", "per-rank off", "bg power group", "bg power per-rank", "channel imbalance")
	for _, freeRanks := range []int{3, 6, 9, 13} {
		groupsOff := freeRanks / g.Channels * g.Channels
		perRankOff := freeRanks
		bgGroup := float64(g.TotalRanks()-groupsOff)*pm.StandbyPower + float64(groupsOff)*pm.MPSMPower
		bgPerRank := float64(g.TotalRanks()-perRankOff)*pm.StandbyPower + float64(perRankOff)*pm.MPSMPower
		imbalance := perRankOff % g.Channels // ranks unevenly distributed
		tab.AddRowf("%d\t%d\t%d\t%.2f\t%.2f\t%d ranks", freeRanks, groupsOff, perRankOff, bgGroup, bgPerRank, imbalance)
		res.Metrics[fmt.Sprintf("bg_group_%dfree", freeRanks)] = bgGroup
		res.Metrics[fmt.Sprintf("bg_perrank_%dfree", freeRanks)] = bgPerRank
	}
	tab.Render(w)
	fmt.Fprintln(w, "\nper-rank saves slightly more but leaves some channels with fewer active ranks,")
	fmt.Fprintln(w, "giving VMs on those channels less bandwidth — the imbalance §3.3 avoids")
	res.footer(w)
	return res
}
