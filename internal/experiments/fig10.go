package experiments

import (
	"fmt"

	"dtl/internal/metrics"
	"dtl/internal/trace"
)

// Fig10 reproduces the remapping-granularity study: with the Fig. 9 traces,
// the share of cold segments (mean reuse distance beyond 10M instructions)
// is much higher at 2MB granularity (paper: 61.5%) than at 4MB (33.2%),
// which is why DTL maps at 2MB.
func Fig10(o Options) Result {
	res := newResult("Fig10", "Segment size vs cold-segment share",
		"61.5% of 2MB segments are cold vs 33.2% of 4MB segments (reuse > 10M instr)")
	w := o.out()
	res.header(w)

	n := o.scaled(800_000, 120_000)
	const threshold = 10_000_000 // instructions, the paper's criterion
	foot := int64(4 << 30)
	if o.Quick {
		foot = 1 << 30
	}

	tab := metrics.NewTable("workload", "cold @2MB", "cold @4MB")
	var sum2, sum4 float64
	for _, app := range fig9Apps {
		p, err := trace.ProfileByName(app)
		if err != nil {
			panic(err)
		}
		p.FootprintBytes = foot
		cold2 := trace.ColdFraction(trace.MustGenerator(p, o.Seed).Next, n, foot, 2<<20, threshold)
		cold4 := trace.ColdFraction(trace.MustGenerator(p, o.Seed).Next, n, foot, 4<<20, threshold)
		sum2 += cold2
		sum4 += cold4
		tab.AddRowf("%s\t%s\t%s", app, pct(cold2), pct(cold4))
	}
	mean2 := sum2 / float64(len(fig9Apps))
	mean4 := sum4 / float64(len(fig9Apps))
	tab.AddRowf("mean\t%s\t%s", pct(mean2), pct(mean4))
	tab.Render(w)

	fmt.Fprintf(w, "\n2MB exposes %.2fx more cold segments than 4MB (paper: 61.5/33.2 = 1.85x)\n",
		mean2/mean4)
	res.Metrics["cold_2mb_mean"] = mean2
	res.Metrics["cold_4mb_mean"] = mean4
	res.Metrics["ratio_2mb_over_4mb"] = mean2 / mean4
	res.footer(w)
	return res
}
