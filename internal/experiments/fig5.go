package experiments

import (
	"dtl/internal/cxl"
	"dtl/internal/dram"
	"dtl/internal/metrics"
	"dtl/internal/sim"
	"dtl/internal/telemetry"
)

// Fig5 reproduces the rank-interleaving cost study: disabling
// rank-interleaving (DTL's mapping) costs 1.7% with local-DRAM latency and
// only 1.4% with CXL latency, because the fixed link latency dilutes the
// relative penalty.
func Fig5(o Options) Result {
	res := newResult("Fig5", "Performance impact of disabling rank-interleaving",
		"1.7% average loss at local latency (121ns), 1.4% at CXL latency (210ns)")
	w := o.out()
	res.header(w)

	n := o.scaled(2_000_000, 150_000)
	profiles := fig2Profiles(o.Quick)
	g := dram.Default1TB()

	tab := metrics.NewTable("latency", "mapping", "mean latency", "exec time (ms)", "loss")
	for _, link := range []struct {
		name string
		lat  sim.Time
	}{{"local (121ns)", cxl.NativeDRAMLatency}, {"CXL (210ns)", cxl.CXLMemoryLatency}} {
		// -metrics samples the CXL channel-only replay (DTL's mapping at the
		// paper's operating point); the other three runs stay uninstrumented.
		var rt *runTelemetry
		if link.lat == cxl.CXLMemoryLatency {
			rt = o.telemetryForRegistry(telemetry.NewRegistry(), 100*sim.Microsecond, 0)
		}
		ri := replayController(g, true, link.lat, profiles, n, o.Seed, nil, o.Shards)
		nori := replayController(g, false, link.lat, profiles, n, o.Seed, rt, o.Shards)
		if err := rt.finish(nori.endTime); err != nil {
			panic(err)
		}
		loss := nori.execTime()/ri.execTime() - 1
		tab.AddRowf("%s\trank-interleaved\t%s\t%.2f\t-",
			link.name, nsT(ri.meanLatNs), ri.execTime()/1e6)
		tab.AddRowf("%s\tchannel-only (DTL)\t%s\t%.2f\t%s",
			link.name, nsT(nori.meanLatNs), nori.execTime()/1e6, pct(loss))
		key := "loss_local"
		if link.lat == cxl.CXLMemoryLatency {
			key = "loss_cxl"
		}
		res.Metrics[key] = loss
	}
	tab.Render(w)
	res.footer(w)
	return res
}
