package dtl

import (
	"testing"

	"dtl/internal/core"
	"dtl/internal/dram"
)

func smallGeometry() Geometry {
	return Geometry{
		Channels:        4,
		RanksPerChannel: 4,
		BanksPerRank:    16,
		SegmentBytes:    2 * dram.MiB,
		RankBytes:       64 * dram.MiB,
	}
}

func openSmall(t *testing.T) *Device {
	t.Helper()
	cfg := core.DefaultConfig(smallGeometry())
	cfg.AUBytes = 16 * dram.MiB
	dev, err := Open(WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func TestOpenDefaults(t *testing.T) {
	dev, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	g := dev.Geometry()
	if g.TotalBytes() != dram.TiB {
		t.Fatalf("default capacity = %d", g.TotalBytes())
	}
	snap := dev.PowerSnapshot(0)
	if snap.RanksByState[Standby] != 32 {
		t.Fatalf("snapshot = %v", snap)
	}
	if snap.String() == "" {
		t.Fatal("empty snapshot string")
	}
}

func TestOpenWithGeometry(t *testing.T) {
	dev, err := Open(WithGeometry(Geometry4TB()), WithLinkLatency(NativeDRAMLatency))
	if err != nil {
		t.Fatal(err)
	}
	if dev.Geometry().TotalBytes() != 4*dram.TiB {
		t.Fatal("geometry option ignored")
	}
}

func TestOpenRejectsBadGeometry(t *testing.T) {
	if _, err := Open(WithGeometry(Geometry{})); err == nil {
		t.Fatal("bad geometry accepted")
	}
}

func TestEndToEndLifecycle(t *testing.T) {
	dev := openSmall(t)
	a, err := dev.AllocateVM(1, 0, 48*dram.MiB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dev.LiveVMs() != 1 || dev.AllocatedBytes() != 48*dram.MiB {
		t.Fatal("allocation not reflected")
	}
	now := Time(1000)
	for _, base := range a.AUBases {
		if _, err := dev.Read(base, now); err != nil {
			t.Fatal(err)
		}
		now += 1000
		if _, err := dev.Write(base+64, now); err != nil {
			t.Fatal(err)
		}
		now += 1000
	}
	if dev.MeanLatency() <= float64(CXLMemoryLatency) {
		t.Fatalf("mean latency %.1f below link latency", dev.MeanLatency())
	}
	if err := dev.DeallocateVM(1, now); err != nil {
		t.Fatal(err)
	}
	snap := dev.PowerSnapshot(now)
	if snap.PoweredDownGroups == 0 {
		t.Fatal("no rank groups powered down after full deallocation")
	}
	rep := dev.EnergyReport(now + 1000)
	if rep.Total() <= 0 {
		t.Fatal("no energy accounted")
	}
	if rep.MPSMEnergy <= 0 {
		t.Fatal("no MPSM energy accounted after power-down")
	}
	if err := dev.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHotnessViaPublicAPI(t *testing.T) {
	cfg := core.DefaultConfig(smallGeometry())
	cfg.AUBytes = 16 * dram.MiB
	cfg.ProfilingWindow = 10_000
	cfg.ProfilingThreshold = 100_000
	dev, err := Open(WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	a, err := dev.AllocateVM(1, 0, 512*dram.MiB, 0)
	if err != nil {
		t.Fatal(err)
	}
	dev.EnableHotnessAwareSelfRefresh(0)
	now := Time(0)
	hot := a.AUBases[:4]
	for i := 0; i < 3000; i++ {
		if _, err := dev.Read(hot[i%len(hot)]+HPA(int64(i%8)*2*dram.MiB), now); err != nil {
			t.Fatal(err)
		}
		now += 500
	}
	dev.Tick(now + 200_000)
	if dev.Stats().SelfRefreshEnters == 0 {
		t.Fatal("hotness engine produced no self-refresh via public API")
	}
}

func TestModelAccessors(t *testing.T) {
	dev := openSmall(t)
	sizes := dev.MetadataSizes()
	if sizes.TotalSRAM() <= 0 || sizes.TotalDRAM() <= 0 {
		t.Fatal("metadata sizes empty")
	}
	est := dev.ControllerEstimate(7)
	if est.TotalPowerMW <= 0 || est.TotalAreaMM2 <= 0 {
		t.Fatal("controller estimate empty")
	}
	m := dev.AMAT()
	if m.CXLMemLat != CXLMemoryLatency {
		t.Fatal("AMAT link latency wrong")
	}
	if dev.SMCStats().L1Hits != 0 {
		t.Fatal("fresh device has SMC hits")
	}
	if dev.Core() == nil {
		t.Fatal("core accessor nil")
	}
}
