// Command vmsched generates an Azure-like VM population, schedules it on a
// server, and prints the placement events and utilization timeline (the
// Figure 1 substrate).
//
// Usage:
//
//	vmsched                      # 400 VMs, 48 vCPU / 384 GB, 6 hours
//	vmsched -vms 100 -seed 7
//	vmsched -events              # also dump placement/departure events
package main

import (
	"flag"
	"fmt"

	"dtl/internal/dram"
	"dtl/internal/sim"
	"dtl/internal/vmtrace"
)

func main() {
	var (
		numVMs = flag.Int("vms", 400, "number of VMs to generate")
		seed   = flag.Int64("seed", 1, "random seed")
		events = flag.Bool("events", false, "dump the event list")
	)
	flag.Parse()

	cfg := vmtrace.DefaultGenConfig()
	cfg.NumVMs = *numVMs
	cfg.Seed = *seed
	vms := vmtrace.Generate(cfg)
	srv := vmtrace.DefaultServer()
	evs, snaps, err := vmtrace.Schedule(vms, srv, cfg.Horizon)
	if err != nil {
		fmt.Println(err)
		return
	}

	if *events {
		for _, ev := range evs {
			kind := "place "
			if ev.Depart {
				kind = "depart"
			}
			fmt.Printf("%10v %s vm%-4d %2d vCPU %8s %s\n",
				ev.At, kind, ev.VM.ID, ev.VM.VCPUs,
				dram.FormatBytes(ev.VM.MemBytes), ev.VM.Workload)
		}
		fmt.Println()
	}

	fmt.Println("time        VMs  vCPUs  memory      util")
	for i, s := range snaps {
		if i%6 != 0 {
			continue
		}
		fmt.Printf("%10v  %3d  %2d/%2d  %10s  %4.1f%%\n",
			s.At, s.ActiveVMs, s.UsedVCPUs, srv.VCPUs,
			dram.FormatBytes(s.UsedMem),
			100*float64(s.UsedMem)/float64(srv.MemBytes))
	}
	fmt.Printf("\nmean memory utilization %.1f%%, peak %.1f%% (%d snapshots over %v)\n",
		100*vmtrace.MeanMemUtilization(snaps, srv),
		100*vmtrace.PeakMemUtilization(snaps, srv),
		len(snaps), sim.Time(cfg.Horizon))
}
