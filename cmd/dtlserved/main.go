// Command dtlserved serves DTL experiments over HTTP: submit jobs against the
// paper's experiment suite, watch them live, fetch content-addressed
// artifacts, and diff two runs server-side with `dtlstat diff` tolerances.
//
//	dtlserved -addr :8080 -workers 2 -store /var/lib/dtlserved
//
//	curl -s localhost:8080/v1/jobs -d '{"experiment":"fig12","quick":true}'
//	curl -s localhost:8080/v1/jobs/j000001/stream
//	curl -s localhost:8080/v1/jobs/j000001/artifacts/trace.jsonl
//
// On SIGTERM/SIGINT the daemon drains: new submissions are rejected with 503
// while queued and in-flight jobs run to completion (bounded by
// -drain-timeout, after which they are canceled), then the listener closes.
//
// The daemon is crash-safe: accepted jobs are journaled to
// <store>/journal.jsonl before Submit returns, and a restart on the same
// -store directory replays the journal — finished jobs are restored
// verbatim, interrupted jobs re-run to byte-identical artifacts. -chaos
// arms the serving-layer fault harness (worker panics, store write errors,
// torn journal writes, simulated power cuts) for recovery drills:
//
//	dtlserved -store /tmp/s -chaos 'seed=1;crash-commit=0.2;journaltear=0.1'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dtl/internal/cliflag"
	"dtl/internal/serve"
	"dtl/internal/serve/chaos"
)

// boundedWorkers validates a -parallel/-shards value, rejecting negatives
// and explicit zeros and capping at GOMAXPROCS with a warning.
func boundedWorkers(name string, v int) int {
	explicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			explicit = true
		}
	})
	n, warn, err := cliflag.BoundedWorkers(name, v, explicit)
	if err != nil {
		log.Fatalf("dtlserved: %v", err)
	}
	if warn != "" {
		log.Printf("dtlserved: %s", warn)
	}
	return n
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	workers := flag.Int("workers", max(1, runtime.NumCPU()/2), "job worker pool size")
	queue := flag.Int("queue", 8, "admission queue depth (full queue => 429)")
	store := flag.String("store", "", "artifact store directory (default: a temp dir)")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "default per-job run bound (0 = none; a job spec may override)")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "graceful-shutdown bound before in-flight jobs are canceled")
	chaosSpec := flag.String("chaos", "", `fault-injection spec, e.g. "seed=1;panic=0.1;crash-commit=0.05" (default: disabled)`)
	parallel := flag.Int("parallel", 1, "default sweep fan-out for jobs that leave 'parallel' unset")
	shards := flag.Int("shards", 1, "default replay shard count for jobs that leave 'shards' unset (artifacts identical at every count)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "dtlserved: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	*parallel = boundedWorkers("parallel", *parallel)
	*shards = boundedWorkers("shards", *shards)

	harness, err := chaos.Parse(*chaosSpec)
	if err != nil {
		log.Fatalf("dtlserved: -chaos: %v", err)
	}

	srv, err := serve.New(serve.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		StoreDir:        *store,
		JobTimeout:      *jobTimeout,
		Chaos:           harness,
		DefaultParallel: *parallel,
		DefaultShards:   *shards,
		// A chaos crash point behaves like a power cut: the process dies on
		// the spot with the classic SIGKILL-style status, and recovery is the
		// next boot's problem.
		OnCrash: func() {
			log.Printf("dtlserved: chaos crash point hit, dying")
			os.Exit(137)
		},
	})
	if err != nil {
		log.Fatalf("dtlserved: %v", err)
	}
	log.Printf("dtlserved: %d workers, queue depth %d, store %s", *workers, *queue, srv.Store().Dir())
	if rec := srv.Recovery(); rec.Restored+rec.Reenqueued > 0 || rec.CorruptRecords > 0 {
		log.Printf("dtlserved: journal recovery: %d restored, %d re-enqueued, %d poisoned, %d corrupt records (torn tail: %v)",
			rec.Restored, rec.Reenqueued, rec.Poisoned, rec.CorruptRecords, rec.TornTail)
	}
	if harness.Enabled() {
		log.Printf("dtlserved: CHAOS ARMED: %s", *chaosSpec)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.ListenAndServe() }()
	log.Printf("dtlserved: listening on %s", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-done:
		log.Fatalf("dtlserved: %v", err)
	case s := <-sig:
		log.Printf("dtlserved: %v: draining (in-flight jobs finish, submits get 503)", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("dtlserved: drain timeout, in-flight jobs canceled: %v", err)
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("dtlserved: shutdown: %v", err)
	}
	log.Printf("dtlserved: stopped")
}
