// Command dtlserved serves DTL experiments over HTTP: submit jobs against the
// paper's experiment suite, watch them live, fetch content-addressed
// artifacts, and diff two runs server-side with `dtlstat diff` tolerances.
//
//	dtlserved -addr :8080 -workers 2 -store /var/lib/dtlserved
//
//	curl -s localhost:8080/v1/jobs -d '{"experiment":"fig12","quick":true}'
//	curl -s localhost:8080/v1/jobs/j000001/stream
//	curl -s localhost:8080/v1/jobs/j000001/artifacts/trace.jsonl
//
// The daemon logs structured records (log/slog) to stderr; -log-format
// selects text or json and -log-level sets the floor. Every job-scoped
// record carries job_id, spec_digest, and stage attributes, so `-log-format
// json` pipes straight into jq:
//
//	dtlserved -log-format json 2>&1 | jq 'select(.job_id=="j000001")'
//
// On SIGTERM/SIGINT the daemon drains: new submissions are rejected with 503
// while queued and in-flight jobs run to completion (bounded by
// -drain-timeout, after which they are canceled), then the listener closes.
// Every exit path after startup drains, which closes the journal cleanly and
// emits a terminal "stopped" record.
//
// The daemon is crash-safe: accepted jobs are journaled to
// <store>/journal.jsonl before Submit returns, and a restart on the same
// -store directory replays the journal — finished jobs are restored
// verbatim, interrupted jobs re-run to byte-identical artifacts. -chaos
// arms the serving-layer fault harness (worker panics, store write errors,
// torn journal writes, simulated power cuts) for recovery drills:
//
//	dtlserved -store /tmp/s -chaos 'seed=1;crash-commit=0.2;journaltear=0.1'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dtl/internal/cliflag"
	"dtl/internal/obs"
	"dtl/internal/serve"
	"dtl/internal/serve/chaos"
)

func main() { os.Exit(run()) }

// run is the whole daemon; it returns the process exit code so every path
// out — flag errors, bind failures, signal-driven shutdown — funnels through
// one place instead of scattering os.Exit calls that would skip cleanup.
// After serve.New succeeds, the only exits are via shutdown(), which drains
// the server (closing the journal) and logs a terminal record.
func run() int {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	workers := flag.Int("workers", max(1, runtime.NumCPU()/2), "job worker pool size")
	queue := flag.Int("queue", 8, "admission queue depth (full queue => 429)")
	store := flag.String("store", "", "artifact store directory (default: a temp dir)")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "default per-job run bound (0 = none; a job spec may override)")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "graceful-shutdown bound before in-flight jobs are canceled")
	chaosSpec := flag.String("chaos", "", `fault-injection spec, e.g. "seed=1;panic=0.1;crash-commit=0.05" (default: disabled)`)
	parallel := flag.Int("parallel", 1, "default sweep fan-out for jobs that leave 'parallel' unset")
	shards := flag.Int("shards", 1, "default replay shard count for jobs that leave 'shards' unset (artifacts identical at every count)")
	logFormat := flag.String("log-format", "text", "log encoding: text or json")
	logLevel := flag.String("log-level", "info", "log floor: debug, info, warn or error")
	pprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof (off by default: exposes heap contents)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "dtlserved: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		return 2
	}

	// The logger comes up before anything that can fail, so even startup
	// errors are structured records in the operator's chosen encoding.
	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dtlserved: %v\n", err)
		return 2
	}

	bounded := func(name string, v int) (int, bool) {
		explicit := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == name {
				explicit = true
			}
		})
		n, warn, err := cliflag.CheckWorkers(name, v, explicit)
		if err != nil {
			logger.Error("invalid flag", "err", err)
			return 0, false
		}
		if warn != nil {
			logger.Warn("worker count capped", "flag", warn.Flag,
				"requested", warn.Requested, "capped", warn.Capped)
		}
		return n, true
	}
	ok := true
	if *parallel, ok = bounded("parallel", *parallel); !ok {
		return 2
	}
	if *shards, ok = bounded("shards", *shards); !ok {
		return 2
	}

	harness, err := chaos.Parse(*chaosSpec)
	if err != nil {
		logger.Error("invalid -chaos spec", "err", err)
		return 2
	}

	srv, err := serve.New(serve.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		StoreDir:        *store,
		JobTimeout:      *jobTimeout,
		Chaos:           harness,
		DefaultParallel: *parallel,
		DefaultShards:   *shards,
		Logger:          logger,
		EnablePprof:     *pprof,
		// A chaos crash point behaves like a power cut: the process dies on
		// the spot with the classic SIGKILL-style status, and recovery is
		// the next boot's problem. Deliberately no drain and no journal
		// close — the drill exists to leave a torn journal behind.
		OnCrash: func() {
			logger.Error("chaos crash point hit, dying", "exit_code", 137)
			os.Exit(137)
		},
	})
	if err != nil {
		logger.Error("startup failed", "err", err)
		return 1
	}
	logger.Info("dtlserved started",
		"workers", *workers, "queue_depth", *queue, "store", srv.Store().Dir(),
		"log_format", *logFormat, "pprof", *pprof)
	if rec := srv.Recovery(); rec.Restored+rec.Reenqueued > 0 || rec.CorruptRecords > 0 {
		logger.Info("journal recovery",
			"restored", rec.Restored, "reenqueued", rec.Reenqueued, "poisoned", rec.Poisoned,
			"corrupt_records", rec.CorruptRecords, "torn_tail", rec.TornTail)
	}
	if harness.Enabled() {
		logger.Warn("CHAOS ARMED", "spec", *chaosSpec)
	}

	// shutdown drains the server (queued and in-flight jobs finish, bounded
	// by -drain-timeout) and closes the listener. Drain closes the journal,
	// so every return below leaves a clean, compactable log behind.
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	shutdown := func(code int) int {
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			logger.Warn("drain timeout, in-flight jobs canceled", "err", err)
		}
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Warn("http shutdown", "err", err)
		}
		logger.Info("stopped", "exit_code", code)
		return code
	}

	done := make(chan error, 1)
	go func() { done <- hs.ListenAndServe() }()
	logger.Info("listening", "addr", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-done:
		// The listener died under us (bind failure or runtime error). The
		// journal still deserves a clean close: drain, then report failure.
		logger.Error("http server failed", "err", err)
		return shutdown(1)
	case s := <-sig:
		logger.Info("signal received, draining", "signal", s.String())
	}
	return shutdown(0)
}
