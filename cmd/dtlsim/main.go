// Command dtlsim regenerates the paper's tables and figures on the
// simulated substrate.
//
// Usage:
//
//	dtlsim -list
//	dtlsim -exp fig12            # one experiment, full scale
//	dtlsim -exp all -quick       # everything, reduced scale
//	dtlsim -exp all -quick -parallel 4
//	dtlsim -exp fig14 -seed 7
//	dtlsim -exp fig12 -quick -trace t.json -metrics m.csv -sample 1ms
//	dtlsim -exp fig12 -quick -trace t.jsonl -trace-format jsonl
//	dtlsim -exp fig12 -quick -policy reserve=3 -trace b.jsonl -trace-format jsonl
//	dtlsim -exp fig12 -watch
//	dtlsim -exp faults -quick -faults 'storm:ch1/rk2:at=90m;kill:ch3/rk1:at=3h'
//	dtlsim -exp fig14 -quick -cpuprofile cpu.pprof -memprofile mem.pprof
//
// -trace writes a trace of the run; -trace-format selects the encoding:
// chrome (default; a trace_event JSON to open in Perfetto or
// chrome://tracing), jsonl (one record per line, streamed as the run
// executes), or csv (the same records as a fixed-column table). The jsonl
// and csv sinks stream, so they keep every event even on runs long enough to
// wrap the in-memory trace ring. Summarize any format with `dtlstat read`;
// compare two runs with `dtlstat diff`. -metrics samples every registry
// metric into a CSV time series; -sample sets the virtual-time sampling
// period (0 = a default matched to the experiment's horizon).
// -faults injects a deterministic fault process (internal/fault grammar) into
// the schedule-driven experiments, exercising the self-healing loop.
// -policy overrides power-policy knobs for A/B comparisons with `dtlstat
// diff`: 'reserve=N' (free-rank-group headroom before power-down),
// 'window=DUR'/'threshold=DUR' (hotness profiling window and victim idle
// threshold), and 'srmin=N' (standby ranks a channel keeps after a victim
// enters self-refresh). Unknown keys fail loudly.
// -watch paints a live dashboard on stderr: per-rank power-state strip,
// rolling counters, and an ETA; plain ANSI on a terminal, one line per
// snapshot when piped. Watching never alters results.
//
// -parallel N runs the selected experiments across N workers; reports print
// in the same order and with the same bytes as a serial run (when several
// experiments run in parallel the shared -trace/-metrics files are disabled,
// since they would interleave). -shards N additionally parallelizes *inside*
// an experiment: controller replays split by channel across N per-shard
// event heaps (sim.ShardedEngine) that meet at sampling barriers, with
// output byte-identical to a serial run at every shard count. Both flags
// reject negative or explicit-zero values and are capped at GOMAXPROCS.
// -cpuprofile/-memprofile write pprof profiles of the run for
// `go tool pprof`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dtl/internal/cliflag"
	"dtl/internal/experiments"
	"dtl/internal/fault"
	"dtl/internal/rack"
	"dtl/internal/sim"
	"dtl/internal/telemetry"
)

// boundedWorkers validates a -parallel/-shards value, rejecting negatives
// and explicit zeros (exit 2) and capping at GOMAXPROCS with a warning.
func boundedWorkers(name string, v int) int {
	explicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			explicit = true
		}
	})
	n, warn, err := cliflag.BoundedWorkers(name, v, explicit)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtlsim:", err)
		os.Exit(2)
	}
	if warn != "" {
		fmt.Fprintln(os.Stderr, "dtlsim:", warn)
	}
	return n
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (fig1..fig15, table2..table6, amat) or 'all'")
		quick    = flag.Bool("quick", false, "reduced-scale run for smoke testing")
		seed     = flag.Int64("seed", 1, "random seed")
		list     = flag.Bool("list", false, "list available experiments")
		jsonOut  = flag.Bool("json", false, "emit results as JSON (suppresses tables)")
		csvDir   = flag.String("csv", "", "directory for plot-ready CSV series (fig1/fig9/fig12/fig14)")
		trace    = flag.String("trace", "", "write a trace of the run (fig9/fig12/fig13/fig14)")
		traceFmt = flag.String("trace-format", "chrome", "trace encoding: chrome, jsonl, or csv (jsonl/csv stream every event)")
		metrics  = flag.String("metrics", "", "write sampled registry metrics as CSV")
		ledger   = flag.String("ledger", "", "write the (vm, rank, cause) attribution cost ledger as JSON (same experiments as -trace)")
		sample   = flag.String("sample", "0", "virtual-time metrics sampling period (e.g. 1ms; 0 = per-experiment default)")
		faults   = flag.String("faults", "", "fault-injection spec for the schedule experiments (fig12/fig13/faults/rack), e.g. 'seed=7;storm:ch1/rk2:at=90m;kill:ch3/rk1:at=3h' (rack runs accept expander-scoped targets like kill:x2/ch0/rk0)")
		policy   = flag.String("policy", "", "power-policy overrides for A/B runs, e.g. 'reserve=3;threshold=80ms;srmin=2'")
		rackN    = flag.Int("rack", 0, "expander count for the rack experiment (0 = its default of 4)")
		fabric   = flag.String("fabric", "", "rack fabric model and placement policy, e.g. 'hop=150ns;gbs=32;policy=pack'")
		watch    = flag.Bool("watch", false, "live dashboard on stderr (power-state strip, counters, ETA)")

		parallel   = flag.Int("parallel", 1, "run experiments across N workers (reports stay in serial order)")
		shards     = flag.Int("shards", 1, "shard controller replays by channel across N event heaps (output stays byte-identical)")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile at exit")
	)
	flag.Parse()

	*parallel = boundedWorkers("parallel", *parallel)
	*shards = boundedWorkers("shards", *shards)

	samplePeriod, err := time.ParseDuration(*sample)
	if err != nil || samplePeriod < 0 {
		fmt.Fprintf(os.Stderr, "dtlsim: bad -sample %q: want a duration like 1ms\n", *sample)
		os.Exit(2)
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Name)
		}
		return
	}

	var out io.Writer = os.Stdout
	if *jsonOut {
		out = io.Discard
	}
	if *faults != "" {
		if _, err := fault.Parse(*faults); err != nil {
			fmt.Fprintln(os.Stderr, "dtlsim:", err)
			os.Exit(2)
		}
	}
	format, err := telemetry.ParseTraceFormat(*traceFmt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtlsim:", err)
		os.Exit(2)
	}
	if format != telemetry.FormatChrome && *trace == "" {
		fmt.Fprintln(os.Stderr, "dtlsim: -trace-format has no effect without -trace")
	}
	pol, err := experiments.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtlsim:", err)
		os.Exit(2)
	}
	rackExplicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "rack" {
			rackExplicit = true
		}
	})
	rackCount, err := cliflag.CheckCount("rack", *rackN, rackExplicit, rack.MaxExpanders)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtlsim:", err)
		os.Exit(2)
	}
	if _, err := rack.ParseFabric(*fabric); err != nil {
		fmt.Fprintln(os.Stderr, "dtlsim:", err)
		os.Exit(2)
	}
	opts := experiments.Options{
		Quick: *quick, Seed: *seed, Out: out, CSVDir: *csvDir,
		TracePath: *trace, MetricsPath: *metrics, LedgerPath: *ledger,
		TraceFormat:  format,
		SamplePeriod: sim.Time(samplePeriod.Nanoseconds()),
		FaultSpec:    *faults,
		Parallel:     *parallel,
		Shards:       *shards,
		Policy:       pol,
		Rack:         rackCount,
		Fabric:       *fabric,
	}

	var watchDone chan struct{}
	if *watch {
		if *parallel > 1 {
			fmt.Fprintln(os.Stderr, "dtlsim: -watch is disabled when experiments run in parallel")
		}
		// Cap 1: the publisher coalesces, so the renderer always reads the
		// newest snapshot and can never stall virtual time.
		opts.Watch = make(chan experiments.WatchSnapshot, 1)
		watchDone = make(chan struct{})
		go runWatch(opts.Watch, watchDone)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtlsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dtlsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = nil
		for _, r := range experiments.All() {
			ids = append(ids, r.ID)
		}
	}
	var runners []experiments.Runner
	for _, id := range ids {
		r, ok := experiments.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "dtlsim: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		runners = append(runners, r)
	}
	results := experiments.RunAll(runners, opts, *parallel)
	if opts.Watch != nil {
		close(opts.Watch) // experiments never close it; the runs are over
		<-watchDone
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtlsim:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dtlsim:", err)
			os.Exit(1)
		}
		f.Close()
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "dtlsim:", err)
			os.Exit(1)
		}
	}
}
