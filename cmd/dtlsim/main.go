// Command dtlsim regenerates the paper's tables and figures on the
// simulated substrate.
//
// Usage:
//
//	dtlsim -list
//	dtlsim -exp fig12            # one experiment, full scale
//	dtlsim -exp all -quick       # everything, reduced scale
//	dtlsim -exp fig14 -seed 7
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dtl/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (fig1..fig15, table2..table6, amat) or 'all'")
		quick   = flag.Bool("quick", false, "reduced-scale run for smoke testing")
		seed    = flag.Int64("seed", 1, "random seed")
		list    = flag.Bool("list", false, "list available experiments")
		jsonOut = flag.Bool("json", false, "emit results as JSON (suppresses tables)")
		csvDir  = flag.String("csv", "", "directory for plot-ready CSV series (fig1/fig9/fig12/fig14)")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Name)
		}
		return
	}

	var out io.Writer = os.Stdout
	if *jsonOut {
		out = io.Discard
	}
	opts := experiments.Options{Quick: *quick, Seed: *seed, Out: out, CSVDir: *csvDir}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = nil
		for _, r := range experiments.All() {
			ids = append(ids, r.ID)
		}
	}
	var results []experiments.Result
	for _, id := range ids {
		r, ok := experiments.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "dtlsim: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		results = append(results, r.Run(opts))
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "dtlsim:", err)
			os.Exit(1)
		}
	}
}
