// Command dtlsim regenerates the paper's tables and figures on the
// simulated substrate.
//
// Usage:
//
//	dtlsim -list
//	dtlsim -exp fig12            # one experiment, full scale
//	dtlsim -exp all -quick       # everything, reduced scale
//	dtlsim -exp all -quick -parallel 4
//	dtlsim -exp fig14 -seed 7
//	dtlsim -exp fig12 -quick -trace t.json -metrics m.csv -sample 1ms
//	dtlsim -exp faults -quick -faults 'storm:ch1/rk2:at=90m;kill:ch3/rk1:at=3h'
//	dtlsim -exp fig14 -quick -cpuprofile cpu.pprof -memprofile mem.pprof
//
// -trace writes a Chrome trace_event JSON of the run (open in Perfetto or
// chrome://tracing); -metrics samples every registry metric into a CSV time
// series; -sample sets the virtual-time sampling period (0 = a default
// matched to the experiment's horizon). Summarize a trace with cmd/dtlstat.
// -faults injects a deterministic fault process (internal/fault grammar) into
// the schedule-driven experiments, exercising the self-healing loop.
//
// -parallel N runs the selected experiments across N workers; reports print
// in the same order and with the same bytes as a serial run (when several
// experiments run in parallel the shared -trace/-metrics files are disabled,
// since they would interleave). -cpuprofile/-memprofile write pprof profiles
// of the run for `go tool pprof`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dtl/internal/experiments"
	"dtl/internal/fault"
	"dtl/internal/sim"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (fig1..fig15, table2..table6, amat) or 'all'")
		quick   = flag.Bool("quick", false, "reduced-scale run for smoke testing")
		seed    = flag.Int64("seed", 1, "random seed")
		list    = flag.Bool("list", false, "list available experiments")
		jsonOut = flag.Bool("json", false, "emit results as JSON (suppresses tables)")
		csvDir  = flag.String("csv", "", "directory for plot-ready CSV series (fig1/fig9/fig12/fig14)")
		trace   = flag.String("trace", "", "write a Chrome trace_event JSON of the run (fig9/fig12/fig13/fig14)")
		metrics = flag.String("metrics", "", "write sampled registry metrics as CSV")
		sample  = flag.String("sample", "0", "virtual-time metrics sampling period (e.g. 1ms; 0 = per-experiment default)")
		faults  = flag.String("faults", "", "fault-injection spec for the schedule experiments (fig12/fig13/faults), e.g. 'seed=7;storm:ch1/rk2:at=90m;kill:ch3/rk1:at=3h'")

		parallel   = flag.Int("parallel", 1, "run experiments across N workers (reports stay in serial order)")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile at exit")
	)
	flag.Parse()

	samplePeriod, err := time.ParseDuration(*sample)
	if err != nil || samplePeriod < 0 {
		fmt.Fprintf(os.Stderr, "dtlsim: bad -sample %q: want a duration like 1ms\n", *sample)
		os.Exit(2)
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Name)
		}
		return
	}

	var out io.Writer = os.Stdout
	if *jsonOut {
		out = io.Discard
	}
	if *faults != "" {
		if _, err := fault.Parse(*faults); err != nil {
			fmt.Fprintln(os.Stderr, "dtlsim:", err)
			os.Exit(2)
		}
	}
	opts := experiments.Options{
		Quick: *quick, Seed: *seed, Out: out, CSVDir: *csvDir,
		TracePath: *trace, MetricsPath: *metrics,
		SamplePeriod: sim.Time(samplePeriod.Nanoseconds()),
		FaultSpec:    *faults,
		Parallel:     *parallel,
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtlsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dtlsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = nil
		for _, r := range experiments.All() {
			ids = append(ids, r.ID)
		}
	}
	var runners []experiments.Runner
	for _, id := range ids {
		r, ok := experiments.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "dtlsim: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		runners = append(runners, r)
	}
	results := experiments.RunAll(runners, opts, *parallel)

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtlsim:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dtlsim:", err)
			os.Exit(1)
		}
		f.Close()
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "dtlsim:", err)
			os.Exit(1)
		}
	}
}
