package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"dtl/internal/experiments"
	"dtl/internal/sim"
)

// The -watch dashboard. It consumes WatchSnapshots from the sim goroutine and
// owns stderr: on a terminal it repaints a compact per-rank power-state strip
// in place with plain ANSI (cursor-up + erase-line, nothing fancier); when
// stderr is piped it degrades to one plain line per snapshot so the output
// stays greppable. Rendering runs on the wall clock and never feeds anything
// back into the run — results are byte-identical with or without it.

// runWatch drains the watch channel until dtlsim closes it, then signals done.
func runWatch(ch <-chan experiments.WatchSnapshot, done chan<- struct{}) {
	defer close(done)
	r := &watchRenderer{w: os.Stderr, tty: stderrIsTTY(), start: time.Now()}
	for s := range ch {
		r.render(s)
	}
}

// stderrIsTTY reports whether stderr is a character device. This is the whole
// TTY story: no termios, no window-size probing — the dashboard fits 80 cols.
func stderrIsTTY() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

type watchRenderer struct {
	w     io.Writer
	tty   bool
	start time.Time
	lines int // lines painted by the previous frame (tty mode)
}

// State glyphs for the rank strip. '#' is the expensive state on purpose:
// a healthy power-down run visibly thins out.
func glyph(state string) byte {
	switch state {
	case "standby":
		return '#'
	case "self-refresh":
		return '~'
	case "mpsm":
		return '.'
	case "retired":
		return 'X'
	}
	return '?'
}

const watchLegend = "# standby   ~ self-refresh   . mpsm   X retired"

func (r *watchRenderer) render(s experiments.WatchSnapshot) {
	if r.tty {
		r.renderFrame(s)
	} else {
		r.renderLine(s)
	}
}

// channelStrips groups the global-rank-ordered strip back into one glyph row
// per channel, ranks left to right.
func channelStrips(s experiments.WatchSnapshot) []string {
	rows := map[int][]byte{}
	for _, rk := range s.Ranks {
		var ch, rank int
		if _, err := fmt.Sscanf(rk.Name, "ch%d/rk%d", &ch, &rank); err != nil {
			ch = 0 // unlabeled rank: fold into one row rather than drop it
		}
		rows[ch] = append(rows[ch], glyph(rk.State))
	}
	chans := make([]int, 0, len(rows))
	for ch := range rows {
		chans = append(chans, ch)
	}
	sort.Ints(chans)
	out := make([]string, 0, len(chans))
	for _, ch := range chans {
		out = append(out, fmt.Sprintf("  ch%-2d %s", ch, rows[ch]))
	}
	return out
}

// progress returns the completed fraction, or -1 when the horizon is unknown.
func progress(s experiments.WatchSnapshot) float64 {
	if s.Horizon <= 0 {
		return -1
	}
	f := float64(s.Now) / float64(s.Horizon)
	return min(f, 1)
}

// eta extrapolates remaining wall time from elapsed wall time and virtual
// progress. Early frames divide by tiny fractions, so it is only shown once
// the run is 1% in.
func (r *watchRenderer) eta(frac float64) string {
	if frac < 0.01 {
		return "--"
	}
	if frac >= 1 {
		return "0s"
	}
	elapsed := time.Since(r.start)
	rem := time.Duration(float64(elapsed) * (1 - frac) / frac)
	return rem.Round(time.Second).String()
}

func vdur(t sim.Time) string {
	return time.Duration(t).String()
}

// headline is the shared first line of both modes.
func headline(s experiments.WatchSnapshot, etaStr string) string {
	name := s.Experiment
	if name == "" {
		name = "run"
	}
	if frac := progress(s); frac >= 0 {
		pct := fmt.Sprintf("%5.1f%%", 100*frac)
		if s.Done {
			pct = " done "
		}
		return fmt.Sprintf("%-7s t %s / %s  %s  ETA %s",
			name, vdur(s.Now), vdur(s.Horizon), pct, etaStr)
	}
	return fmt.Sprintf("%-7s t %s", name, vdur(s.Now))
}

func counters(s experiments.WatchSnapshot) string {
	return fmt.Sprintf("  migrations %-10d wakes %-10d faults %-6d retired %d",
		s.Migrations, s.Wakes, s.Faults, s.Retired)
}

// attrPane renders the live attribution ledger as one line per nonzero
// cause; empty when no ledger is attached.
func attrPane(s experiments.WatchSnapshot) []string {
	if len(s.Attr) == 0 {
		return nil
	}
	lines := []string{"  attribution (cause: latency / energy):"}
	for _, a := range s.Attr {
		lines = append(lines, fmt.Sprintf("    %-17s %12s  %11.3g",
			a.Cause, vdur(sim.Time(a.LatNs)), a.Energy))
	}
	return lines
}

// renderFrame repaints the dashboard in place: move the cursor up over the
// previous frame, then rewrite every line with erase-to-end so shrinking
// content leaves no droppings.
func (r *watchRenderer) renderFrame(s experiments.WatchSnapshot) {
	lines := []string{headline(s, r.eta(progress(s)))}
	lines = append(lines, channelStrips(s)...)
	lines = append(lines, counters(s))
	lines = append(lines, attrPane(s)...)
	lines = append(lines, "  "+watchLegend)

	var b strings.Builder
	if r.lines > 0 {
		fmt.Fprintf(&b, "\x1b[%dA", r.lines)
	}
	for _, l := range lines {
		b.WriteString("\x1b[2K") // erase line
		b.WriteString(l)
		b.WriteByte('\n')
	}
	io.WriteString(r.w, b.String())
	r.lines = len(lines)
}

// renderLine is the piped fallback: one self-contained line per snapshot.
func (r *watchRenderer) renderLine(s experiments.WatchSnapshot) {
	byState := map[string]int{}
	for _, rk := range s.Ranks {
		byState[rk.State]++
	}
	var b strings.Builder
	name := s.Experiment
	if name == "" {
		name = "run"
	}
	fmt.Fprintf(&b, "watch %s t=%s", name, vdur(s.Now))
	if s.Horizon > 0 {
		fmt.Fprintf(&b, "/%s", vdur(s.Horizon))
	}
	if frac := progress(s); frac >= 0 {
		fmt.Fprintf(&b, " %.1f%%", 100*frac)
	}
	for _, st := range []string{"standby", "self-refresh", "mpsm", "retired"} {
		if n, ok := byState[st]; ok {
			fmt.Fprintf(&b, " %s=%d", st, n)
		}
	}
	fmt.Fprintf(&b, " migrations=%d wakes=%d faults=%d", s.Migrations, s.Wakes, s.Faults)
	for _, a := range s.Attr {
		fmt.Fprintf(&b, " attr.%s=%dns", a.Cause, a.LatNs)
	}
	if s.Done {
		b.WriteString(" done")
	}
	b.WriteByte('\n')
	io.WriteString(r.w, b.String())
}
