package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"dtl/internal/telemetry"
)

// update regenerates the golden files instead of comparing against them:
//
//	go test ./cmd/dtlstat -run TestTopJSONGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// fixtureLedger charges one cell per cause — including the rack fabric pair —
// so the golden output exercises every row `dtlstat top` can render.
func fixtureLedger(t *testing.T) string {
	t.Helper()
	l := telemetry.NewLedger(telemetry.LedgerConfig{Ranks: 8})
	l.Charge(telemetry.SystemVM, 0, telemetry.CauseBaseline, 0, 9000.5)
	l.Charge(1, 0, telemetry.CauseBaseline, 5000, 0)
	l.Charge(1, 1, telemetry.CauseSMCMissWalk, 900, 0)
	l.Charge(1, 1, telemetry.CauseSelfRefreshWake, 4400, 0)
	l.Charge(2, 2, telemetry.CauseDegradedRead, 2500, 0)
	l.Charge(2, 3, telemetry.CauseMigrationCopy, 0, 350.25)
	l.Charge(2, 3, telemetry.CauseMigrationStall, 760, 0)
	l.Charge(3, 4, telemetry.CauseDemotionWait, 1800, 0)
	l.Charge(3, 5, telemetry.CauseFaultRetry, 640, 0)
	// The fabric pair: the stall is time-only by design, the copy is the
	// only fabric entry carrying energy.
	l.Charge(1, 6, telemetry.CauseFabricStall, 3300, 0)
	l.Charge(3, 7, telemetry.CauseFabricCopy, 0, 1200.75)

	path := filepath.Join(t.TempDir(), "ledger.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// runTop invokes cmdTop with stdout captured.
func runTop(t *testing.T, args ...string) (string, int) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := cmdTop(args)
	os.Stdout = old
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), code
}

// TestTopJSONGolden pins the exact `dtlstat top -json` bytes for a ledger
// carrying every cause, fabric-copy and fabric-stall included. The source
// path varies per run (t.TempDir), so the fixture is read from a stable name
// inside the golden by templating the path out before comparing.
func TestTopJSONGolden(t *testing.T) {
	path := fixtureLedger(t)
	out, code := runTop(t, "-json", path)
	if code != 0 {
		t.Fatalf("cmdTop exit %d, output:\n%s", code, out)
	}
	got := bytes.ReplaceAll([]byte(out), []byte(path), []byte("LEDGER"))

	golden := filepath.Join("testdata", "top_fabric.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with go test ./cmd/dtlstat -run TestTopJSONGolden -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("top -json output drifted from %s\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
	for _, cause := range []string{"fabric-copy", "fabric-stall"} {
		if !bytes.Contains(got, []byte(`"key": "`+cause+`"`)) {
			t.Errorf("by_cause grouping is missing %q", cause)
		}
	}
}

// TestTopTextNamesFabricCauses keeps the human-readable tables greppable for
// the fabric causes, the same contract CI relies on for the other causes.
func TestTopTextNamesFabricCauses(t *testing.T) {
	path := fixtureLedger(t)
	out, code := runTop(t, path)
	if code != 0 {
		t.Fatalf("cmdTop exit %d, output:\n%s", code, out)
	}
	for _, cause := range []string{"fabric-copy", "fabric-stall"} {
		if !bytes.Contains([]byte(out), []byte(cause)) {
			t.Errorf("text tables do not name %q:\n%s", cause, out)
		}
	}
}
