package main

// dtlstat's live-daemon subcommands: `jobs` lists a running dtlserved's
// fleet with per-stage wall-clock breakdowns, and `timeline` renders one
// job's wall-clock span log — from the daemon or from a timeline.json
// artifact on disk — as a waterfall, with repeatable -check gates for CI
// ("the queued stage's p99 must stay under 100ms").

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"time"

	"dtl/internal/metrics"
	"dtl/internal/obs"
)

// jobRow is the subset of dtlserved's JobStatus that `dtlstat jobs` renders.
// Decoding into a trimmed struct keeps the CLI decoupled from the server's
// internal types: unknown fields are ignored, so the daemon can grow its
// status payload without breaking older dtlstat binaries.
type jobRow struct {
	ID   string `json:"id"`
	State string `json:"state"`
	Spec struct {
		Experiment string `json:"experiment"`
		Seed       int64  `json:"seed"`
	} `json:"spec"`
	SpecDigest  string                `json:"spec_digest"`
	Error       string                `json:"error"`
	SubmittedAt time.Time             `json:"submitted_at"`
	Artifacts   []json.RawMessage     `json:"artifacts"`
	Timeline    *obs.TimelineSnapshot `json:"timeline"`
}

// getJSON fetches url and decodes the response into v, surfacing the
// daemon's {"error": ...} body on non-2xx status.
func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var ae struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &ae) == nil && ae.Error != "" {
			return fmt.Errorf("%s: %s", url, ae.Error)
		}
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.Unmarshal(body, v)
}

// normalizeAddr accepts "host:port" or a full URL and returns a base URL.
func normalizeAddr(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// stageSeconds extracts one stage's total seconds from a snapshot (0 when
// the stage never ran).
func stageSeconds(tl *obs.TimelineSnapshot, stage string) float64 {
	if tl == nil {
		return 0
	}
	for _, st := range tl.Stages {
		if st.Stage == stage {
			return st.Seconds
		}
	}
	return 0
}

// cmdJobs lists the daemon's jobs with wall-clock stage breakdowns.
func cmdJobs(args []string) int {
	fs := flag.NewFlagSet("dtlstat jobs", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "dtlserved address (host:port or URL)")
	state := fs.String("state", "", "filter by lifecycle state: queued, running, done, failed or canceled")
	jsonOut := fs.Bool("json", false, "emit the raw job list JSON instead of a table")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dtlstat jobs [-addr host:port] [-state S] [-json]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 0 {
		fs.Usage()
		return 2
	}

	url := normalizeAddr(*addr) + "/v1/jobs"
	if *state != "" {
		url += "?state=" + *state
	}
	var jobs []jobRow
	if err := getJSON(url, &jobs); err != nil {
		fmt.Fprintln(os.Stderr, "dtlstat:", err)
		return 1
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jobs); err != nil {
			fmt.Fprintln(os.Stderr, "dtlstat:", err)
			return 1
		}
		return 0
	}

	if len(jobs) == 0 {
		fmt.Println("no jobs")
		return 0
	}
	tab := metrics.NewTable("job", "state", "experiment", "submitted", "wall_s", "queued_s", "running_s", "commit_s", "arts")
	for _, j := range jobs {
		wall, queued, running, commit := "-", "-", "-", "-"
		if j.Timeline != nil {
			wall = fmt.Sprintf("%.3f", j.Timeline.WallSeconds)
			queued = fmt.Sprintf("%.3f", stageSeconds(j.Timeline, "queued"))
			running = fmt.Sprintf("%.3f", stageSeconds(j.Timeline, "running"))
			commit = fmt.Sprintf("%.3f", stageSeconds(j.Timeline, "artifact-commit"))
		}
		exp := j.Spec.Experiment
		if j.Error != "" {
			exp += " (!)"
		}
		tab.AddRow(j.ID, j.State, exp, j.SubmittedAt.Format("15:04:05"),
			wall, queued, running, commit, fmt.Sprintf("%d", len(j.Artifacts)))
	}
	tab.Render(os.Stdout)
	return 0
}

// stageCheck is one parsed -check gate: "stage=queued,p99<100ms".
type stageCheck struct {
	stage string
	stat  string // p50 | p95 | p99 | max
	bound time.Duration
}

// checkPat matches the -check grammar. The percentile set mirrors
// metrics.Summary's fields.
var checkPat = regexp.MustCompile(`^stage=([a-z-]+),(p50|p95|p99|max)<(.+)$`)

// checkFlags collects repeatable -check flags (flag.Value).
type checkFlags []stageCheck

func (c *checkFlags) String() string { return fmt.Sprintf("%d checks", len(*c)) }

func (c *checkFlags) Set(s string) error {
	m := checkPat.FindStringSubmatch(s)
	if m == nil {
		return fmt.Errorf("want stage=NAME,p50|p95|p99|max<DURATION (e.g. stage=queued,p99<100ms), got %q", s)
	}
	if _, ok := obs.ParseStage(m[1]); !ok {
		return fmt.Errorf("unknown stage %q", m[1])
	}
	d, err := time.ParseDuration(m[3])
	if err != nil {
		return fmt.Errorf("bad duration in %q: %v", s, err)
	}
	*c = append(*c, stageCheck{stage: m[1], stat: m[2], bound: d})
	return nil
}

// eval gates one check against the snapshot's per-stage span samples.
func (c stageCheck) eval(tl *obs.TimelineSnapshot) error {
	var samples []float64
	for _, sp := range tl.Spans {
		if sp.Stage == c.stage {
			samples = append(samples, float64(sp.DurUs)/1e6)
		}
	}
	if len(samples) == 0 {
		return fmt.Errorf("stage %q has no spans in this timeline", c.stage)
	}
	sum := metrics.Summarize(samples)
	var got float64
	switch c.stat {
	case "p50":
		got = sum.P50
	case "p95":
		got = sum.P95
	case "p99":
		got = sum.P99
	case "max":
		got = sum.Max
	}
	if got >= c.bound.Seconds() {
		return fmt.Errorf("stage %q %s = %s, want < %s",
			c.stage, c.stat, time.Duration(got*float64(time.Second)).Round(time.Microsecond), c.bound)
	}
	return nil
}

// loadTimeline reads a TimelineSnapshot from a file (the timeline.json
// artifact) or, when path is empty, from the daemon's timeline endpoint.
func loadTimeline(path, addr, jobID string) (*obs.TimelineSnapshot, error) {
	var tl obs.TimelineSnapshot
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if err := json.Unmarshal(data, &tl); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		return &tl, nil
	}
	if jobID == "" {
		return nil, fmt.Errorf("need a timeline.json path or -job ID")
	}
	url := normalizeAddr(addr) + "/v1/jobs/" + jobID + "/timeline"
	if err := getJSON(url, &tl); err != nil {
		return nil, err
	}
	return &tl, nil
}

// cmdTimeline renders one job's wall-clock spans as a waterfall plus
// per-stage statistics, and gates them with repeatable -check flags.
func cmdTimeline(args []string) int {
	fs := flag.NewFlagSet("dtlstat timeline", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "dtlserved address (host:port or URL)")
	job := fs.String("job", "", "job id to fetch from -addr (alternative to a timeline.json path)")
	jsonOut := fs.Bool("json", false, "emit the snapshot JSON instead of tables")
	var checks checkFlags
	fs.Var(&checks, "check", "repeatable gate: stage=NAME,p50|p95|p99|max<DURATION; exit nonzero on violation")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: dtlstat timeline [-json] [-check stage=queued,p99<100ms]... <timeline.json>
       dtlstat timeline [-json] [-check ...] -addr host:port -job j000001`)
		fs.PrintDefaults()
	}
	fs.Parse(args)
	path := ""
	switch fs.NArg() {
	case 0:
	case 1:
		path = fs.Arg(0)
	default:
		fs.Usage()
		return 2
	}

	tl, err := loadTimeline(path, *addr, *job)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtlstat:", err)
		return 1
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tl); err != nil {
			fmt.Fprintln(os.Stderr, "dtlstat:", err)
			return 1
		}
	} else {
		renderTimeline(os.Stdout, tl)
	}

	bad := 0
	for _, c := range checks {
		if err := c.eval(tl); err != nil {
			fmt.Fprintln(os.Stderr, "dtlstat: FAIL:", err)
			bad++
		}
	}
	if bad > 0 {
		return 1
	}
	if len(checks) > 0 && !*jsonOut {
		fmt.Printf("\ntimeline checks: %d PASS\n", len(checks))
	}
	return 0
}

// renderTimeline prints the per-stage stats table and the span waterfall.
func renderTimeline(w io.Writer, tl *obs.TimelineSnapshot) {
	id := tl.JobID
	if id == "" {
		id = "(unknown job)"
	}
	fmt.Fprintf(w, "%s  wall %.3fs  core %.3fs  start %s\n\n",
		id, tl.WallSeconds, tl.CoreSeconds, tl.Start.Format(time.RFC3339))

	tab := metrics.NewTable("stage", "kind", "count", "total_s", "share")
	for _, st := range tl.Stages {
		kind := "detail"
		if st.Core {
			kind = "core"
		}
		share := "-"
		if tl.WallSeconds > 0 {
			share = fmt.Sprintf("%.1f%%", 100*st.Seconds/tl.WallSeconds)
		}
		tab.AddRow(st.Stage, kind, fmt.Sprintf("%d", st.Count),
			fmt.Sprintf("%.6f", st.Seconds), share)
	}
	tab.Render(w)

	if len(tl.Spans) == 0 {
		return
	}
	// Waterfall: each span as a bar positioned on the job's wall clock.
	const width = 50
	wallUs := tl.WallSeconds * 1e6
	fmt.Fprintf(w, "\nwaterfall (%d spans", len(tl.Spans))
	if tl.DroppedSpans > 0 {
		fmt.Fprintf(w, ", %d dropped past cap", tl.DroppedSpans)
	}
	fmt.Fprintln(w, ")")
	for _, sp := range tl.Spans {
		bar := [width]byte{}
		for i := range bar {
			bar[i] = '.'
		}
		if wallUs > 0 {
			lo := int(float64(sp.StartUs) / wallUs * width)
			hi := int(float64(sp.StartUs+sp.DurUs) / wallUs * width)
			if lo > width-1 {
				lo = width - 1
			}
			if hi <= lo {
				hi = lo + 1 // every span gets at least one cell
			}
			if hi > width {
				hi = width
			}
			for i := lo; i < hi; i++ {
				bar[i] = '#'
			}
		}
		fmt.Fprintf(w, "  %-16s |%s| %9.3fms @ %.3fms\n",
			sp.Stage, bar, float64(sp.DurUs)/1e3, float64(sp.StartUs)/1e3)
	}
}
