package main

// dtlstat top: render the attribution cost ledger as sorted breakdown
// tables — "where did my latency and energy go, and who pays for it?".
// The input is either a ledger JSON artifact (dtlsim -ledger) or any trace
// carrying the finish-time ledger dump; the two agree because both come from
// the same Ledger.Snapshot.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"dtl/internal/metrics"
	"dtl/internal/telemetry"
)

// topGroup is one aggregation bucket (a cause, a VM, or a rank).
type topGroup struct {
	Key    string  `json:"key"`
	LatNs  int64   `json:"lat_ns"`
	Energy float64 `json:"energy"`
}

// topReport is the -json shape: the raw snapshot plus the three groupings
// the text tables render. Cause names appear verbatim, so CI can grep for
// e.g. "fault-retry" in the output.
type topReport struct {
	Source      string                  `json:"source"`
	TotalLatNs  int64                   `json:"total_lat_ns"`
	TotalEnergy float64                 `json:"total_energy"`
	ByCause     []topGroup              `json:"by_cause"`
	ByVM        []topGroup              `json:"by_vm"`
	ByRank      []topGroup              `json:"by_rank"`
	Entries     []telemetry.LedgerEntry `json:"entries"`
}

// cmdTop renders per-cause / per-VM / per-rank attribution breakdowns.
func cmdTop(args []string) int {
	fs := flag.NewFlagSet("dtlstat top", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the breakdown as JSON instead of tables")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dtlstat top [-json] <ledger.json | trace>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}

	snap, err := loadLedger(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtlstat:", err)
		return 1
	}
	if len(snap.Entries) == 0 {
		fmt.Fprintf(os.Stderr, "dtlstat: %s: no attribution records — run dtlsim with -ledger (or -trace) to record the cost ledger\n", fs.Arg(0))
		return 1
	}

	rep := buildTopReport(fs.Arg(0), snap)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "dtlstat:", err)
			return 1
		}
		return 0
	}

	fmt.Printf("attribution ledger: %s\n", rep.Source)
	fmt.Printf("total: %d ns latency, %.6g energy (power-weight x ns)\n\n", rep.TotalLatNs, rep.TotalEnergy)
	renderTopTable("by cause", "cause", rep.ByCause, rep.TotalLatNs, rep.TotalEnergy)
	renderTopTable("by VM", "vm", rep.ByVM, rep.TotalLatNs, rep.TotalEnergy)
	renderTopTable("by rank", "rank", rep.ByRank, rep.TotalLatNs, rep.TotalEnergy)
	return 0
}

// loadLedger sniffs path: a ledger JSON artifact is parsed directly, anything
// else is summarized as a trace and the ledger dump is folded back out of it.
func loadLedger(path string) (*telemetry.LedgerSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	// The artifact is MarshalIndent output, so its totals key sits in the
	// first few bytes; no trace format ever contains it.
	head := data
	if len(head) > 256 {
		head = head[:256]
	}
	if bytes.Contains(head, []byte(`"total_lat_ns"`)) {
		snap, err := telemetry.ParseLedgerSnapshot(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return snap, nil
	}
	s, err := loadSummary(path)
	if err != nil {
		return nil, err
	}
	snap := &telemetry.LedgerSnapshot{Entries: s.Attribution}
	for _, e := range s.Attribution {
		snap.TotalLatNs += e.LatNs
		snap.TotalEnergy += e.Energy
	}
	return snap, nil
}

// buildTopReport folds the snapshot's entries into the three groupings,
// each sorted by descending latency (energy, then key, as tiebreaks).
func buildTopReport(source string, snap *telemetry.LedgerSnapshot) *topReport {
	rep := &topReport{
		Source:      source,
		TotalLatNs:  snap.TotalLatNs,
		TotalEnergy: snap.TotalEnergy,
		Entries:     snap.Entries,
	}
	byCause := map[string]*topGroup{}
	byVM := map[string]*topGroup{}
	byRank := map[string]*topGroup{}
	for _, e := range snap.Entries {
		accumulate(byCause, e.Cause, e)
		accumulate(byVM, vmLabel(e.VM), e)
		accumulate(byRank, rankLabel(e.Rank), e)
	}
	rep.ByCause = sortGroups(byCause)
	rep.ByVM = sortGroups(byVM)
	rep.ByRank = sortGroups(byRank)
	return rep
}

func accumulate(m map[string]*topGroup, key string, e telemetry.LedgerEntry) {
	g := m[key]
	if g == nil {
		g = &topGroup{Key: key}
		m[key] = g
	}
	g.LatNs += e.LatNs
	g.Energy += e.Energy
}

func sortGroups(m map[string]*topGroup) []topGroup {
	out := make([]topGroup, 0, len(m))
	for _, g := range m {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.LatNs != b.LatNs {
			return a.LatNs > b.LatNs
		}
		if a.Energy != b.Energy {
			return a.Energy > b.Energy
		}
		return a.Key < b.Key
	})
	return out
}

// vmLabel renders a VM id; the SystemVM pseudo-tenant gets a name.
func vmLabel(vm int64) string {
	if vm == telemetry.SystemVM {
		return "system"
	}
	return fmt.Sprintf("vm%d", vm)
}

// rankLabel renders a global rank id; -1 means not rank-scoped.
func rankLabel(rank int) string {
	if rank < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", rank)
}

func renderTopTable(title, keyName string, groups []topGroup, totLat int64, totEnergy float64) {
	fmt.Println(title + ":")
	tab := metrics.NewTable(keyName, "lat_ns", "lat_share", "energy", "energy_share")
	for _, g := range groups {
		tab.AddRow(g.Key,
			fmt.Sprintf("%d", g.LatNs), shareOfInt(g.LatNs, totLat),
			fmt.Sprintf("%.6g", g.Energy), shareOfFloat(g.Energy, totEnergy))
	}
	tab.Render(os.Stdout)
	fmt.Println()
}

func shareOfInt(part, total int64) string {
	if total <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(total))
}

func shareOfFloat(part, total float64) string {
	if total <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*part/total)
}
