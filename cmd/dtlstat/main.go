// Command dtlstat summarizes a Chrome trace_event JSON file produced by
// dtlsim -trace: per-rank residency in each power state, migration-latency
// percentiles, and counts of the remaining instrumented events.
//
// Usage:
//
//	dtlstat trace.json
//	dtlsim -exp fig12 -quick -trace t.json && dtlstat t.json
//	dtlstat -check RESIDENCY_seed.json t.json   # CI residency gate
//
// -check compares the device-wide residency share of each power state
// against a tolerance band (JSON: {"states": {"mpsm": {"share": 0.4,
// "tol": 0.1}, ...}}) and exits nonzero on a violation, so CI can catch
// power-behavior regressions the unit suite is too coarse to see.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"dtl/internal/metrics"
	"dtl/internal/telemetry"
)

func main() {
	check := flag.String("check", "", "residency band JSON; exit nonzero if any state's aggregate share leaves its band")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dtlstat [-check band.json] <trace.json>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtlstat:", err)
		os.Exit(1)
	}
	s, err := telemetry.SummarizeChromeTrace(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtlstat:", err)
		os.Exit(1)
	}
	if len(s.Residency) == 0 {
		fmt.Fprintln(os.Stderr, "dtlstat: no power spans in trace")
		os.Exit(1)
	}

	ranks := make([]int, 0, len(s.Residency))
	for rank := range s.Residency {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	states := stateColumns(s)

	fmt.Printf("power-state residency (%d ranks, run %.3f s)\n\n",
		len(ranks), s.RankDuration(ranks[0])/1e6)
	header := append([]string{"rank"}, states...)
	tab := metrics.NewTable(append(header, "total_s")...)
	for _, rank := range ranks {
		total := s.RankDuration(rank)
		cells := []string{rankLabel(s, rank)}
		for _, st := range states {
			cells = append(cells, sharePct(s.Residency[rank][st], total))
		}
		cells = append(cells, fmt.Sprintf("%.3f", total/1e6))
		tab.AddRow(cells...)
	}
	agg, aggTotal := aggregateResidency(s, ranks, states)
	cells := []string{"ALL"}
	for _, st := range states {
		cells = append(cells, sharePct(agg[st], aggTotal))
	}
	cells = append(cells, fmt.Sprintf("%.3f", aggTotal/1e6))
	tab.AddRow(cells...)
	tab.Render(os.Stdout)

	fmt.Printf("\nmigrations: %d", len(s.MigrationsUs))
	if len(s.MigrationsUs) > 0 {
		sum := metrics.Summarize(s.MigrationsUs)
		fmt.Printf("  latency us: P50 %.1f  P95 %.1f  P99 %.1f  max %.1f",
			sum.P50, sum.P95, sum.P99, sum.Max)
	}
	fmt.Println()
	if len(s.MigrationReasons) > 0 {
		reasons := make([]string, 0, len(s.MigrationReasons))
		for r := range s.MigrationReasons {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		for _, r := range reasons {
			fmt.Printf("  %-18s %d\n", r, s.MigrationReasons[r])
		}
	}

	if len(s.Points) > 0 {
		fmt.Println("\nevents:")
		names := make([]string, 0, len(s.Points))
		for n := range s.Points {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-18s %d\n", n, s.Points[n])
		}
	}

	if *check != "" {
		if err := checkBand(*check, agg, aggTotal); err != nil {
			fmt.Fprintln(os.Stderr, "dtlstat:", err)
			os.Exit(1)
		}
		fmt.Printf("\nresidency band check against %s: PASS\n", *check)
	}
}

// aggregateResidency sums residency microseconds across ranks per state, and
// the device-wide total rank-time.
func aggregateResidency(s *telemetry.TraceSummary, ranks []int, states []string) (map[string]float64, float64) {
	agg := map[string]float64{}
	var total float64
	for _, rank := range ranks {
		for _, st := range states {
			agg[st] += s.Residency[rank][st]
		}
		total += s.RankDuration(rank)
	}
	return agg, total
}

// residencyBand is the tolerance-band file format: the expected device-wide
// share of each power state plus an absolute tolerance.
type residencyBand struct {
	Description string `json:"description,omitempty"`
	Source      string `json:"source,omitempty"`
	States      map[string]struct {
		Share float64 `json:"share"`
		Tol   float64 `json:"tol"`
	} `json:"states"`
}

// checkBand compares the aggregate residency against the band file.
func checkBand(path string, agg map[string]float64, total float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var band residencyBand
	if err := json.Unmarshal(data, &band); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(band.States) == 0 {
		return fmt.Errorf("%s: band has no states", path)
	}
	if total <= 0 {
		return fmt.Errorf("trace has no rank time to check")
	}
	names := make([]string, 0, len(band.States))
	for st := range band.States {
		names = append(names, st)
	}
	sort.Strings(names)
	var bad []string
	for _, st := range names {
		b := band.States[st]
		got := agg[st] / total
		if got < b.Share-b.Tol || got > b.Share+b.Tol {
			bad = append(bad, fmt.Sprintf("%s share %.3f outside %.3f±%.3f", st, got, b.Share, b.Tol))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("residency band violated: %v", bad)
	}
	return nil
}

// stateColumns lists the power states to render: the canonical DRAM states
// in their usual order (always shown, even at zero residency) followed by
// any other state names the trace carries.
func stateColumns(s *telemetry.TraceSummary) []string {
	cols := []string{"standby", "self-refresh", "mpsm"}
	known := map[string]bool{}
	for _, c := range cols {
		known[c] = true
	}
	for _, st := range s.States() {
		if !known[st] {
			cols = append(cols, st)
		}
	}
	return cols
}

// rankLabel prefers the recorded thread name ("ch0/rk3"); falls back to the
// numeric tid.
func rankLabel(s *telemetry.TraceSummary, rank int) string {
	if name, ok := s.RankNames[rank]; ok && name != "" {
		return name
	}
	return fmt.Sprintf("rk%d", rank)
}

// sharePct renders a residency share of the rank's total time.
func sharePct(us, total float64) string {
	if total <= 0 {
		return "-"
	}
	if us == 0 {
		return "0%"
	}
	return fmt.Sprintf("%.1f%%", 100*us/total)
}
