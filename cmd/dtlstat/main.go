// Command dtlstat summarizes and compares traces produced by dtlsim -trace:
// per-rank residency in each power state, migration-latency percentiles, the
// background-energy proxy, attribution-ledger breakdowns, and counts of the
// remaining instrumented events. All three trace encodings (chrome, jsonl,
// csv) are accepted and sniffed automatically; `top` additionally accepts
// the ledger JSON written by dtlsim -ledger.
//
// Usage:
//
//	dtlstat read trace.jsonl
//	dtlstat read -json trace.jsonl                       # machine-readable summary
//	dtlstat read -check RESIDENCY_seed.json trace.json   # CI residency gate
//	dtlstat read -expanders 4 rack.jsonl                 # per-expander residency of a rack trace
//	dtlstat top ledger.json                              # where did my energy go?
//	dtlstat top -json trace.jsonl
//	dtlstat diff baseline.jsonl candidate.jsonl
//	dtlstat diff -share 0.05 -lat 0.25 -energy 0.10 -attr 0.25 a.jsonl b.jsonl
//	dtlstat jobs -addr 127.0.0.1:8080 -state running     # live dtlserved fleet
//	dtlstat timeline timeline.json                       # where did my wall-clock go?
//	dtlstat timeline -check stage=queued,p99<100ms timeline.json
//
//	dtlstat [-check band.json] trace.json                # legacy spelling of 'read'
//
// `read` renders one trace's summary. -check compares the device-wide
// residency share of each power state against a tolerance band (JSON:
// {"states": {"mpsm": {"share": 0.4, "tol": 0.1}, ...}}) and exits nonzero
// on a violation, so CI can catch power-behavior regressions the unit suite
// is too coarse to see. -expanders N folds a rack trace's rack-global rank
// axis (dtlsim -exp rack) back into N per-expander residency rows, showing
// which expanders the placement policy kept awake; it refuses traces whose
// channel count N does not divide.
//
// `top` renders the attribution cost ledger — every nanosecond of latency
// and every unit of the energy proxy charged to a (vm, rank, cause) triple —
// as sorted per-cause, per-VM and per-rank breakdown tables. It accepts
// either a ledger JSON file (dtlsim -ledger) or any trace that carries the
// finish-time ledger dump.
//
// `diff` compares a baseline run A against a candidate B: per-state residency
// share deltas (aggregate and worst rank), migration-latency percentile
// shifts, the energy-proxy drift, and per-cause attribution shifts. With no
// tolerance flags it only reports; setting -share/-lat/-energy/-attr turns
// the corresponding check into a gate that exits nonzero when the candidate
// leaves the band (a rank-set mismatch always fails). Two runs of the same
// dtlsim configuration are byte-deterministic, so `dtlstat diff -share 1e-9`
// of a repeated run is a meaningful CI identity check.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"dtl/internal/metrics"
	"dtl/internal/telemetry"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 {
		switch args[0] {
		case "read":
			os.Exit(cmdRead(args[1:]))
		case "diff":
			os.Exit(cmdDiff(args[1:]))
		case "top":
			os.Exit(cmdTop(args[1:]))
		case "jobs":
			os.Exit(cmdJobs(args[1:]))
		case "timeline":
			os.Exit(cmdTimeline(args[1:]))
		case "help", "-h", "-help", "--help":
			usage()
			return
		}
	}
	// Legacy spelling: dtlstat [-check band.json] <trace.json>.
	os.Exit(cmdRead(args))
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dtlstat read [-json] [-check band.json] [-expanders N] <trace>
  dtlstat top [-json] <ledger.json | trace>
  dtlstat diff [-json] [-share S] [-lat L] [-energy E] [-attr A] <traceA> <traceB>
  dtlstat jobs [-addr host:port] [-state S] [-json]
  dtlstat timeline [-json] [-check stage=queued,p99<100ms]... <timeline.json>
  dtlstat timeline [-json] [-check ...] -addr host:port -job j000001
  dtlstat [-check band.json] <trace>     (same as 'read')

Traces may be chrome JSON, JSONL, or events CSV; the format is sniffed.
'top' also accepts the attribution ledger JSON written by dtlsim -ledger.
'jobs' and 'timeline' talk to a live dtlserved; 'timeline' also reads the
timeline.json artifact every finished job carries.`)
}

// loadSummary opens and summarizes one trace file of any supported format.
// Empty and mid-record-truncated traces get distinct, actionable messages
// (the telemetry errors carry the line/offset of the cut).
func loadSummary(path string) (*telemetry.TraceSummary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := telemetry.SummarizeTrace(f)
	switch {
	case errors.Is(err, telemetry.ErrEmptyTrace):
		return nil, fmt.Errorf("%s: %w — was the run interrupted before any record was written?", path, err)
	case errors.Is(err, telemetry.ErrTruncatedTrace):
		return nil, fmt.Errorf("%s: %w — the writer was likely killed mid-run; the records before the cut are intact", path, err)
	case err != nil:
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// cmdRead renders one trace's summary, optionally gated by a residency band.
func cmdRead(args []string) int {
	fs := flag.NewFlagSet("dtlstat read", flag.ExitOnError)
	check := fs.String("check", "", "residency band JSON; exit nonzero if any state's aggregate share leaves its band")
	jsonOut := fs.Bool("json", false, "emit the summary as JSON instead of tables")
	expanders := fs.Int("expanders", 0, "fold the rack-global rank axis of a rack trace into N per-expander residency rows (0 = off)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dtlstat read [-json] [-check band.json] [-expanders N] <trace>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}

	s, err := loadSummary(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtlstat:", err)
		return 1
	}
	if len(s.Residency) == 0 {
		fmt.Fprintln(os.Stderr, "dtlstat: no power spans in trace")
		return 1
	}

	ranks := s.Ranks()
	states := stateColumns(s)

	var expRows []expanderResidency
	if *expanders > 0 {
		expRows, err = splitByExpander(s, ranks, states, *expanders)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtlstat:", err)
			return 1
		}
	} else if *expanders < 0 {
		fmt.Fprintf(os.Stderr, "dtlstat: -expanders %d: want a positive count\n", *expanders)
		return 2
	}

	if *jsonOut {
		agg, aggTotal := aggregateResidency(s, ranks, states)
		if err := writeReadJSON(s, ranks, states, agg, aggTotal, expRows); err != nil {
			fmt.Fprintln(os.Stderr, "dtlstat:", err)
			return 1
		}
		if *check != "" {
			if err := checkBand(*check, agg, aggTotal); err != nil {
				fmt.Fprintln(os.Stderr, "dtlstat:", err)
				return 1
			}
		}
		return 0
	}

	fmt.Printf("power-state residency (%d ranks, run %.3f s)\n\n",
		len(ranks), s.RankDuration(ranks[0])/1e6)
	header := append([]string{"rank"}, states...)
	tab := metrics.NewTable(append(header, "total_s")...)
	for _, rank := range ranks {
		total := s.RankDuration(rank)
		cells := []string{s.RankLabel(rank)}
		for _, st := range states {
			cells = append(cells, sharePct(s.Residency[rank][st], total))
		}
		cells = append(cells, fmt.Sprintf("%.3f", total/1e6))
		tab.AddRow(cells...)
	}
	agg, aggTotal := aggregateResidency(s, ranks, states)
	cells := []string{"ALL"}
	for _, st := range states {
		cells = append(cells, sharePct(agg[st], aggTotal))
	}
	cells = append(cells, fmt.Sprintf("%.3f", aggTotal/1e6))
	tab.AddRow(cells...)
	tab.Render(os.Stdout)

	if len(expRows) > 0 {
		fmt.Printf("\nper-expander residency (%d expanders):\n", len(expRows))
		etab := metrics.NewTable(append(append([]string{"expander", "ranks"}, states...), "total_s")...)
		for _, er := range expRows {
			cells := []string{fmt.Sprintf("x%d", er.Expander), fmt.Sprintf("%d", er.Ranks)}
			for _, st := range states {
				cells = append(cells, sharePct(er.residencyUs[st], er.totalUs))
			}
			cells = append(cells, fmt.Sprintf("%.3f", er.totalUs/1e6))
			etab.AddRow(cells...)
		}
		etab.Render(os.Stdout)
	}

	fmt.Printf("\nmigrations: %d", len(s.MigrationsUs))
	if len(s.MigrationsUs) > 0 {
		sum := metrics.Summarize(s.MigrationsUs)
		fmt.Printf("  latency us: P50 %.1f  P95 %.1f  P99 %.1f  max %.1f",
			sum.P50, sum.P95, sum.P99, sum.Max)
	}
	fmt.Println()
	if len(s.MigrationReasons) > 0 {
		reasons := make([]string, 0, len(s.MigrationReasons))
		for r := range s.MigrationReasons {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		for _, r := range reasons {
			fmt.Printf("  %-18s %d\n", r, s.MigrationReasons[r])
		}
	}

	fmt.Printf("\nenergy proxy: %.0f (weight x us, standby=1.0 self-refresh=0.2 mpsm=0.068)\n",
		s.EnergyProxy(nil))

	if len(s.Points) > 0 {
		fmt.Println("\nevents:")
		names := make([]string, 0, len(s.Points))
		for n := range s.Points {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-18s %d\n", n, s.Points[n])
		}
	}

	if *check != "" {
		if err := checkBand(*check, agg, aggTotal); err != nil {
			fmt.Fprintln(os.Stderr, "dtlstat:", err)
			return 1
		}
		fmt.Printf("\nresidency band check against %s: PASS\n", *check)
	}
	return 0
}

// cmdDiff compares a baseline trace A against a candidate B.
func cmdDiff(args []string) int {
	fs := flag.NewFlagSet("dtlstat diff", flag.ExitOnError)
	share := fs.Float64("share", 0, "max absolute residency-share drift per state, aggregate and per-rank (0 = report only)")
	lat := fs.Float64("lat", 0, "max relative migration-latency percentile shift, e.g. 0.25 = 25% (0 = report only)")
	energy := fs.Float64("energy", 0, "max relative energy-proxy drift (0 = report only)")
	attr := fs.Float64("attr", 0, "max relative per-cause attribution shift, latency and energy (0 = report only)")
	jsonOut := fs.Bool("json", false, "emit the diff and verdict as JSON instead of tables")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dtlstat diff [-json] [-share S] [-lat L] [-energy E] [-attr A] <traceA> <traceB>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}

	a, err := loadSummary(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtlstat:", err)
		return 1
	}
	b, err := loadSummary(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtlstat:", err)
		return 1
	}

	d := telemetry.DiffSummaries(a, b)
	tol := telemetry.DiffTolerance{Share: *share, LatFrac: *lat, EnergyFrac: *energy, AttrFrac: *attr}
	gated := tol.Share > 0 || tol.LatFrac > 0 || tol.EnergyFrac > 0 || tol.AttrFrac > 0

	if *jsonOut {
		bad := d.Check(tol)
		wrapper := struct {
			A          string                 `json:"a"`
			B          string                 `json:"b"`
			Diff       *telemetry.SummaryDiff `json:"diff"`
			Violations []string               `json:"violations"`
			Pass       bool                   `json:"pass"`
		}{fs.Arg(0), fs.Arg(1), d, bad, len(bad) == 0}
		if wrapper.Violations == nil {
			wrapper.Violations = []string{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(wrapper); err != nil {
			fmt.Fprintln(os.Stderr, "dtlstat:", err)
			return 1
		}
		if len(bad) > 0 {
			return 1
		}
		return 0
	}

	fmt.Printf("diff: A=%s  B=%s\n\n", fs.Arg(0), fs.Arg(1))

	tab := metrics.NewTable("state", "share_A", "share_B", "delta_pp", "worst_rank", "rank_delta_pp")
	for _, sh := range d.Aggregate {
		worst := "-"
		worstDelta := "-"
		if rd, w, ok := d.WorstRankShare(sh.State); ok {
			worst = rd.Label
			worstDelta = fmt.Sprintf("%+.2f", 100*w.Delta())
		}
		tab.AddRow(sh.State,
			fmt.Sprintf("%.1f%%", 100*sh.A), fmt.Sprintf("%.1f%%", 100*sh.B),
			fmt.Sprintf("%+.2f", 100*sh.Delta()), worst, worstDelta)
	}
	tab.Render(os.Stdout)

	if len(d.RanksOnlyA) > 0 || len(d.RanksOnlyB) > 0 {
		fmt.Printf("\nrank sets differ: %d ranks only in A, %d only in B\n",
			len(d.RanksOnlyA), len(d.RanksOnlyB))
	}

	fmt.Printf("\nmigrations: A %d  B %d\n", d.MigrationsA, d.MigrationsB)
	for _, p := range d.Percentiles {
		fmt.Printf("  %-4s %8.1f us -> %8.1f us  (%+.1f%%)\n", p.Name, p.A, p.B, 100*p.Shift())
	}
	fmt.Printf("energy proxy: A %.0f  B %.0f  (%+.2f%%)\n", d.EnergyA, d.EnergyB, 100*d.EnergyDelta())

	if len(d.Causes) > 0 {
		fmt.Println("\nattribution (per cause):")
		ctab := metrics.NewTable("cause", "lat_A_ns", "lat_B_ns", "lat_shift", "energy_A", "energy_B", "energy_shift")
		for _, c := range d.Causes {
			ctab.AddRow(c.Cause,
				fmt.Sprintf("%d", c.LatA), fmt.Sprintf("%d", c.LatB),
				fmt.Sprintf("%+.1f%%", 100*c.LatShift()),
				fmt.Sprintf("%.4g", c.EnergyA), fmt.Sprintf("%.4g", c.EnergyB),
				fmt.Sprintf("%+.1f%%", 100*c.EnergyShift()))
		}
		ctab.Render(os.Stdout)
	}

	if len(d.Points) > 0 {
		names := make([]string, 0, len(d.Points))
		for n := range d.Points {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println("events:")
		for _, n := range names {
			c := d.Points[n]
			fmt.Printf("  %-18s A %-8d B %-8d (%+d)\n", n, c[0], c[1], c[1]-c[0])
		}
	}

	bad := d.Check(tol)
	if len(bad) > 0 {
		fmt.Println()
		for _, v := range bad {
			fmt.Fprintln(os.Stderr, "dtlstat: FAIL:", v)
		}
		return 1
	}
	if gated {
		fmt.Println("\ntolerance check: PASS")
	}
	return 0
}

// aggregateResidency sums residency microseconds across ranks per state, and
// the device-wide total rank-time.
func aggregateResidency(s *telemetry.TraceSummary, ranks []int, states []string) (map[string]float64, float64) {
	agg := map[string]float64{}
	var total float64
	for _, rank := range ranks {
		for _, st := range states {
			agg[st] += s.Residency[rank][st]
		}
		total += s.RankDuration(rank)
	}
	return agg, total
}

// expanderResidency is one expander's fold of the rack-global rank axis.
type expanderResidency struct {
	Expander int                `json:"expander"`
	Ranks    int                `json:"ranks"`
	TotalS   float64            `json:"total_s"`
	Shares   map[string]float64 `json:"shares"`

	residencyUs map[string]float64
	totalUs     float64
}

// splitByExpander folds a rack trace's ranks into n per-expander rows. Rack
// traces concatenate the expanders' channels (a rank's channel is
// x*chansPerExpander + localChannel), so the owning expander is recovered
// from the "chX/rkY" rank names the trace carries. A channel count n does
// not divide, or a trace without channel-labelled ranks, is a loud error —
// silently folding a single-expander trace would fabricate a rack that never
// ran.
func splitByExpander(s *telemetry.TraceSummary, ranks []int, states []string, n int) ([]expanderResidency, error) {
	chOf := make(map[int]int, len(ranks))
	maxCh := -1
	for _, rank := range ranks {
		var ch, rk int
		if _, err := fmt.Sscanf(s.RankLabel(rank), "ch%d/rk%d", &ch, &rk); err != nil {
			return nil, fmt.Errorf("-expanders: rank %d has label %q, not the chX/rkY form a rack trace records", rank, s.RankLabel(rank))
		}
		chOf[rank] = ch
		if ch > maxCh {
			maxCh = ch
		}
	}
	channels := maxCh + 1
	if channels%n != 0 {
		return nil, fmt.Errorf("-expanders %d does not divide the trace's %d channels", n, channels)
	}
	perExp := channels / n
	rows := make([]expanderResidency, n)
	for x := range rows {
		rows[x] = expanderResidency{
			Expander:    x,
			Shares:      map[string]float64{},
			residencyUs: map[string]float64{},
		}
	}
	for _, rank := range ranks {
		er := &rows[chOf[rank]/perExp]
		er.Ranks++
		for _, st := range states {
			er.residencyUs[st] += s.Residency[rank][st]
		}
		er.totalUs += s.RankDuration(rank)
	}
	for x := range rows {
		er := &rows[x]
		er.TotalS = er.totalUs / 1e6
		if er.totalUs > 0 {
			for _, st := range states {
				er.Shares[st] = er.residencyUs[st] / er.totalUs
			}
		}
	}
	return rows, nil
}

// residencyBand is the tolerance-band file format: the expected device-wide
// share of each power state plus an absolute tolerance.
type residencyBand struct {
	Description string `json:"description,omitempty"`
	Source      string `json:"source,omitempty"`
	States      map[string]struct {
		Share float64 `json:"share"`
		Tol   float64 `json:"tol"`
	} `json:"states"`
}

// checkBand compares the aggregate residency against the band file.
func checkBand(path string, agg map[string]float64, total float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var band residencyBand
	if err := json.Unmarshal(data, &band); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(band.States) == 0 {
		return fmt.Errorf("%s: band has no states", path)
	}
	if total <= 0 {
		return fmt.Errorf("trace has no rank time to check")
	}
	names := make([]string, 0, len(band.States))
	for st := range band.States {
		names = append(names, st)
	}
	sort.Strings(names)
	var bad []string
	for _, st := range names {
		b := band.States[st]
		got := agg[st] / total
		if got < b.Share-b.Tol || got > b.Share+b.Tol {
			bad = append(bad, fmt.Sprintf("%s share %.3f outside %.3f±%.3f", st, got, b.Share, b.Tol))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("residency band violated: %v", bad)
	}
	return nil
}

// stateColumns lists the power states to render: the canonical DRAM states
// in their usual order (always shown, even at zero residency) followed by
// any other state names the trace carries.
func stateColumns(s *telemetry.TraceSummary) []string {
	cols := []string{"standby", "self-refresh", "mpsm"}
	known := map[string]bool{}
	for _, c := range cols {
		known[c] = true
	}
	for _, st := range s.States() {
		if !known[st] {
			cols = append(cols, st)
		}
	}
	return cols
}

// readRankJSON is one rank's residency in the -json summary.
type readRankJSON struct {
	Rank   int                `json:"rank"`
	Label  string             `json:"label"`
	TotalS float64            `json:"total_s"`
	Shares map[string]float64 `json:"shares"`
}

// readReport is the `dtlstat read -json` shape.
type readReport struct {
	Ranks       []readRankJSON          `json:"ranks"`
	Aggregate   map[string]float64      `json:"aggregate_shares"`
	Expanders   []expanderResidency     `json:"expanders,omitempty"`
	Migrations  int                     `json:"migrations"`
	LatencyUs   *metrics.Summary        `json:"migration_latency_us,omitempty"`
	Reasons     map[string]int          `json:"migration_reasons,omitempty"`
	EnergyProxy float64                 `json:"energy_proxy"`
	Events      map[string]int          `json:"events,omitempty"`
	Attribution []telemetry.LedgerEntry `json:"attribution,omitempty"`
}

// writeReadJSON emits the machine-readable form of the `read` summary.
func writeReadJSON(s *telemetry.TraceSummary, ranks []int, states []string, agg map[string]float64, aggTotal float64, expRows []expanderResidency) error {
	rep := readReport{
		Aggregate:   map[string]float64{},
		Expanders:   expRows,
		Migrations:  len(s.MigrationsUs),
		Reasons:     s.MigrationReasons,
		EnergyProxy: s.EnergyProxy(nil),
		Events:      s.Points,
		Attribution: s.Attribution,
	}
	for _, rank := range ranks {
		total := s.RankDuration(rank)
		rr := readRankJSON{
			Rank: rank, Label: s.RankLabel(rank),
			TotalS: total / 1e6, Shares: map[string]float64{},
		}
		for _, st := range states {
			if total > 0 {
				rr.Shares[st] = s.Residency[rank][st] / total
			}
		}
		rep.Ranks = append(rep.Ranks, rr)
	}
	for _, st := range states {
		if aggTotal > 0 {
			rep.Aggregate[st] = agg[st] / aggTotal
		}
	}
	if len(s.MigrationsUs) > 0 {
		sum := metrics.Summarize(s.MigrationsUs)
		rep.LatencyUs = &sum
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// sharePct renders a residency share of the rank's total time.
func sharePct(us, total float64) string {
	if total <= 0 {
		return "-"
	}
	if us == 0 {
		return "0%"
	}
	return fmt.Sprintf("%.1f%%", 100*us/total)
}
