// Command tracegen emits synthetic CloudSuite-like post-cache memory access
// traces as CSV (address,write,instr), for inspection or for feeding other
// tools.
//
// Usage:
//
//	tracegen -list
//	tracegen -workload graph-analytics -n 100000 > trace.csv
//	tracegen -mix data-serving,web-search -n 100000 -footprint 4096
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"dtl/internal/trace"
)

func main() {
	var (
		workload  = flag.String("workload", "", "single workload profile name")
		mix       = flag.String("mix", "", "comma-separated profiles to mix")
		n         = flag.Int("n", 100000, "number of accesses to emit")
		footprint = flag.Int64("footprint", 2048, "per-workload footprint in MiB")
		seed      = flag.Int64("seed", 1, "random seed")
		list      = flag.Bool("list", false, "list available workload profiles")
		stats     = flag.Bool("stats", false, "print stride distribution instead of the trace")
	)
	flag.Parse()

	if *list {
		for _, p := range trace.CloudSuite() {
			fmt.Printf("%-20s MAPKI %.1f\n", p.Name, p.MAPKI)
		}
		return
	}

	var next func() trace.Access
	switch {
	case *workload != "":
		p, err := trace.ProfileByName(*workload)
		if err != nil {
			fatal(err)
		}
		p.FootprintBytes = *footprint << 20
		g, err := trace.NewGenerator(p, *seed)
		if err != nil {
			fatal(err)
		}
		next = g.Next
	case *mix != "":
		var profiles []trace.Profile
		for _, name := range strings.Split(*mix, ",") {
			p, err := trace.ProfileByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			p.FootprintBytes = *footprint << 20
			profiles = append(profiles, p)
		}
		m, err := trace.NewMixed(profiles, *seed)
		if err != nil {
			fatal(err)
		}
		next = m.Next
	default:
		fatal(fmt.Errorf("tracegen: need -workload or -mix (or -list)"))
	}

	if *stats {
		dist := trace.StrideDistribution(next, *n)
		for i, label := range trace.StrideBucketLabels() {
			fmt.Printf("%-8s %.2f%%\n", label, 100*dist[i])
		}
		return
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, "addr,write,instr")
	for i := 0; i < *n; i++ {
		a := next()
		wr := 0
		if a.Write {
			wr = 1
		}
		fmt.Fprintf(w, "%d,%d,%d\n", a.Addr, wr, a.Instr)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
