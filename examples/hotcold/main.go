// Hotcold demonstrates hotness-aware self-refresh: a VM with a skewed
// access pattern (a hot head plus a mostly-quiet tail) runs on a small
// device; DTL profiles per-rank accesses, plans a cold-segment
// consolidation through the migration table, swaps segments, and puts the
// victim rank of each channel into self-refresh. Accessing a cold segment
// wakes the rank; the engine then re-enters self-refresh.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dtl"
	"dtl/internal/core"
)

func main() {
	geom := dtl.Geometry{
		Channels:        4,
		RanksPerChannel: 4,
		BanksPerRank:    16,
		SegmentBytes:    2 << 20,
		RankBytes:       256 << 20, // 4 GiB device
	}
	cfg := core.DefaultConfig(geom)
	cfg.AUBytes = 64 << 20
	// Scaled-down thresholds so the demo converges in milliseconds of
	// simulated time (the paper's 0.5 ms / 50 ms assume minutes-long runs).
	cfg.ProfilingWindow = 20_000     // 20 us
	cfg.ProfilingThreshold = 100_000 // 100 us

	dev, err := dtl.Open(dtl.WithConfig(cfg))
	if err != nil {
		log.Fatal(err)
	}

	alloc, err := dev.AllocateVM(1, 0, 2<<30, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocated %d AUs; active ranks/channel: %d\n",
		len(alloc.AUBases), dev.PowerSnapshot(0).ActiveRanksPerChannel)

	dev.EnableHotnessAwareSelfRefresh(0)

	// Drive a hot/cold split: 90% of accesses to the first AU (hot), the
	// rest to a small slice of the remaining AUs (lukewarm); most of the
	// allocation is never touched and is what the victim rank collects.
	rng := rand.New(rand.NewSource(1))
	now := dtl.Time(0)
	for i := 0; i < 3_000_000; i++ {
		var addr dtl.HPA
		if rng.Float64() < 0.9 {
			addr = alloc.AUBases[0] + dtl.HPA(rng.Int63n(64<<20)&^63)
		} else {
			au := 1 + rng.Intn(len(alloc.AUBases)-1)
			addr = alloc.AUBases[au] + dtl.HPA(rng.Int63n(4<<20)&^63)
		}
		if _, err := dev.Read(addr, now); err != nil {
			log.Fatal(err)
		}
		now += 2
		if i%500_000 == 0 {
			fmt.Printf("t=%-10v %v\n", now, dev.PowerSnapshot(now))
		}
	}
	dev.Tick(now)

	st := dev.Stats()
	fmt.Printf("\nself-refresh entries: %d, exits: %d, segments swapped: %d\n",
		st.SelfRefreshEnters, st.SelfRefreshExits, st.SegmentsSwapped)
	fmt.Println("final:", dev.PowerSnapshot(now))

	// Wake a rank by touching a cold segment on it, then let it re-enter.
	snap := dev.PowerSnapshot(now)
	if snap.RanksByState[dtl.SelfRefresh] > 0 {
		fmt.Println("\ntouching a cold address to wake a self-refresh rank...")
		cold := alloc.AUBases[len(alloc.AUBases)-1] + dtl.HPA(32<<20)
		lat, err := dev.Read(cold, now)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cold read latency %v (includes self-refresh exit penalty)\n", lat)
		fmt.Println("after wake:", dev.PowerSnapshot(now+1))
	}
}
