// Serve demonstrates an A/B policy study through dtlserved's HTTP API using
// the Go client: it submits a quick Figure 12 baseline and a `reserve=3`
// variant, follows the variant's snapshot stream, then asks the server to
// diff the two traces and prints the residency movement per power state.
//
// By default it spins up an in-process daemon on an ephemeral port, so the
// example is self-contained; point -addr at a running dtlserved to exercise a
// real deployment instead:
//
//	dtlserved -addr :8080 &
//	go run ./examples/serve -addr http://127.0.0.1:8080
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"dtl/internal/experiments"
	"dtl/internal/metrics"
	"dtl/internal/serve"
	"dtl/internal/serve/client"
)

func main() {
	addr := flag.String("addr", "", "dtlserved base URL (default: start an in-process server)")
	flag.Parse()

	base := *addr
	if base == "" {
		srv, err := serve.New(serve.Config{Workers: 2})
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go http.Serve(ln, srv.Handler())
		base = "http://" + ln.Addr().String()
		fmt.Printf("in-process dtlserved at %s (store %s)\n\n", base, srv.Store().Dir())
		defer os.RemoveAll(srv.Store().Dir())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	// The hardened client: jittered backoff on 5xx/transport errors,
	// Retry-After honored on 429/503, circuit breaker on a dead daemon.
	// OnEvent surfaces every retry and breaker transition — against the
	// in-process daemon it stays silent, but pointed at a flaky deployment
	// this is where the transport's self-healing becomes visible.
	c := client.New(base).WithRetry(client.RetryPolicy{
		OnEvent: func(ev client.RetryEvent) {
			switch ev.Kind {
			case client.EventRetry:
				fmt.Fprintf(os.Stderr, "transport: attempt %d failed (%v); retrying in %s\n",
					ev.Attempt, ev.Err, ev.Delay.Round(time.Millisecond))
			default:
				fmt.Fprintf(os.Stderr, "transport: circuit breaker %s\n",
					strings.TrimPrefix(ev.Kind, "breaker-"))
			}
		},
	})

	// Submit the A/B pair: same experiment, same seed, one policy knob apart.
	baseline, err := c.Submit(ctx, serve.JobSpec{Experiment: "fig12", Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	variant, err := c.Submit(ctx, serve.JobSpec{Experiment: "fig12", Quick: true, Policy: "reserve=3"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s (baseline) and %s (policy %q)\n", baseline.ID, variant.ID, variant.Spec.Policy)

	// Follow the variant live — the same coalesced snapshot stream that
	// drives `dtlsim -watch`, over HTTP.
	snaps := 0
	final, err := c.Stream(ctx, variant.ID, func(s experiments.WatchSnapshot) { snaps++ })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s after %d streamed snapshots\n", variant.ID, final.State, snaps)
	if _, err := c.Wait(ctx, baseline.ID); err != nil {
		log.Fatal(err)
	}

	// Server-side diff: residency shares, migration percentiles, energy proxy.
	diff, err := c.Diff(ctx, serve.DiffRequest{A: baseline.ID, B: variant.ID})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nresidency shift, baseline -> reserve=3:\n\n")
	tbl := metrics.NewTable("state", "baseline", "reserve=3", "delta (pp)")
	for _, sh := range diff.Aggregate {
		tbl.AddRowf("%s\t%.1f%%\t%.1f%%\t%+.1f", sh.State, 100*sh.A, 100*sh.B, 100*sh.Delta())
	}
	tbl.Render(os.Stdout)
	fmt.Printf("\nenergy proxy: %+.2f%% (migrations %d -> %d)\n",
		diff.EnergyPct, diff.MigrationsA, diff.MigrationsB)
}
