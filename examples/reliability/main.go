// Reliability demonstrates the research directions the paper's conclusion
// opens up: because DTL owns the HPA→DPA mapping, the device can (a) retire
// a failing rank by draining it transparently, and (b) checkpoint its
// metadata so a controller restart preserves the hosts' address space.
package main

import (
	"bytes"
	"fmt"
	"log"

	"dtl"
	"dtl/internal/core"
	"dtl/internal/dram"
)

func main() {
	geom := dtl.Geometry{
		Channels:        4,
		RanksPerChannel: 4,
		BanksPerRank:    16,
		SegmentBytes:    2 << 20,
		RankBytes:       256 << 20,
	}
	cfg := core.DefaultConfig(geom)
	cfg.AUBytes = 64 << 20
	dev, err := dtl.Open(dtl.WithConfig(cfg))
	if err != nil {
		log.Fatal(err)
	}

	alloc, err := dev.AllocateVM(1, 0, 1<<30, 0)
	if err != nil {
		log.Fatal(err)
	}
	now := dtl.Time(1000)
	for i, base := range alloc.AUBases {
		if _, err := dev.Write(base+dtl.HPA(i*64), now); err != nil {
			log.Fatal(err)
		}
		now += 1000
	}
	fmt.Println("before failure:", dev.PowerSnapshot(now))
	fmt.Printf("usable capacity: %s\n\n", dram.FormatBytes(dev.UsableBytes()))

	// --- Rank retirement ---------------------------------------------
	// Suppose channel 0 / rank 0 starts throwing correctable-error storms.
	fmt.Println("retiring ch0/rk0 (simulated ECC storm)...")
	migratedBefore := dev.Stats().SegmentsMigrated
	if err := dev.RetireRank(0, 0, now); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drained %d segments off the failing rank\n",
		dev.Stats().SegmentsMigrated-migratedBefore)
	fmt.Println("after retirement:", dev.PowerSnapshot(now))
	fmt.Printf("usable capacity: %s\n", dram.FormatBytes(dev.UsableBytes()))

	// The VM never noticed: same host addresses, still serviced.
	now += 1000
	if _, err := dev.Read(alloc.AUBases[0], now); err != nil {
		log.Fatal(err)
	}
	fmt.Println("VM addresses still resolve after retirement")

	// --- Metadata checkpoint / restore -------------------------------
	var checkpoint bytes.Buffer
	if err := dev.SaveMetadata(&checkpoint); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncheckpointed controller metadata: %d bytes\n", checkpoint.Len())

	restored, err := dtl.Restore(&checkpoint, dtl.WithConfig(cfg))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("restored device:", restored.PowerSnapshot(now))
	if _, err := restored.Read(alloc.AUBases[0], now+1000); err != nil {
		log.Fatal(err)
	}
	fmt.Println("restored device serves the same host addresses")
	if err := restored.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("restored state passes all consistency invariants")
}
