// Quickstart: open a DTL-equipped CXL memory device, allocate memory for a
// VM, issue host loads/stores through the translation layer, and watch
// rank-level power-down reclaim background power when the VM leaves.
package main

import (
	"fmt"
	"log"

	"dtl"
)

func main() {
	// A 1 TB device: 4 channels x 8 ranks x 32 GiB (the paper's Fig. 6
	// configuration), behind a 210 ns CXL link.
	dev, err := dtl.Open()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("device:", dev.Geometry())
	fmt.Println("initial:", dev.PowerSnapshot(0))

	// Allocate 8 GB for VM 1 on host 0. The allocation is spread evenly
	// across channels but packed into as few ranks as possible, so idle
	// rank groups can power down.
	now := dtl.Time(0)
	alloc, err := dev.AllocateVM(1, 0, 8<<30, now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocated %d bytes over %d allocation units\n", alloc.Bytes, len(alloc.AUBases))
	fmt.Println("after alloc:", dev.PowerSnapshot(now))

	// Issue some host accesses. The first access to each 2 MB segment
	// walks the full translation path (two SRAM tables + one DRAM read);
	// later accesses hit the segment mapping cache.
	for i := 0; i < 8; i++ {
		addr := alloc.AUBases[0] + dtl.HPA(int64(i)*2<<20)
		now += 1000
		lat, err := dev.Read(addr, now)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("read  %#012x  latency %v\n", int64(addr), lat)
		now += 1000
		if _, err := dev.Write(addr+64, now); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("SMC stats: %+v\n", dev.SMCStats())
	fmt.Printf("AMAT model: translation %.2fns, total %.2fns\n",
		dev.AMAT().Translation(), dev.AMAT().AMAT())

	// Deallocate: the consolidation check runs and unneeded rank groups
	// enter maximum power saving mode.
	now += 1000
	if err := dev.DeallocateVM(1, now); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after dealloc:", dev.PowerSnapshot(now))

	rep := dev.EnergyReport(now)
	fmt.Printf("background energy so far: standby %.3g, self-refresh %.3g, mpsm %.3g units-ns\n",
		rep.StandbyEnergy, rep.SelfRefreshEnergy, rep.MPSMEnergy)
}
