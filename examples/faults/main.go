// Faults demonstrates the self-healing reliability loop end to end: a
// seeded fault injector storms one rank with correctable errors and kills
// another outright while VMs keep their memory allocated. The health monitor
// detects the storm through the device's ECC telemetry, automatically
// retires both degraded ranks (draining their segments to healthy ones), and
// the VMs never notice — every host address stays readable throughout.
package main

import (
	"fmt"
	"log"

	"dtl"
	"dtl/internal/core"
	"dtl/internal/dram"
	"dtl/internal/fault"
	"dtl/internal/sim"
)

func main() {
	geom := dtl.Geometry{
		Channels:        4,
		RanksPerChannel: 4,
		BanksPerRank:    16,
		SegmentBytes:    2 << 20,
		RankBytes:       256 << 20,
	}
	cfg := core.DefaultConfig(geom)
	cfg.AUBytes = 64 << 20
	dev, err := dtl.Open(dtl.WithConfig(cfg))
	if err != nil {
		log.Fatal(err)
	}
	d := dev.Core()

	// Two tenants, enough data that every channel holds live segments.
	var bases []dtl.HPA
	for vm := dtl.VMID(1); vm <= 2; vm++ {
		alloc, err := dev.AllocateVM(vm, dtl.HostID(vm-1), 1<<30, 0)
		if err != nil {
			log.Fatal(err)
		}
		bases = append(bases, alloc.AUBases...)
	}
	fmt.Println("before faults: ", dev.PowerSnapshot(0))
	fmt.Printf("usable capacity: %s\n\n", dram.FormatBytes(dev.UsableBytes()))

	// The chaos scenario: an ECC storm on ch0/rk0 at t=1ms (500 errors over
	// ~50ms, far past the health monitor's leaky bucket) and a hard rank
	// failure on ch2/rk1 at t=100ms.
	spec := fault.MustParse("seed=42;" +
		"storm:ch0/rk0:at=1ms,rate=10000,dur=50ms;" +
		"kill:ch2/rk1:at=100ms")
	eng := sim.NewEngine()
	inj, err := fault.NewInjector(spec, d.Device(), eng)
	if err != nil {
		log.Fatal(err)
	}
	horizon := 500 * sim.Millisecond
	inj.Start(horizon)

	// Run the clock: deliver faults, then let the DTL's health monitor react
	// at every tick (the hypervisor's periodic interval, shrunk for demo).
	for now := sim.Time(0); now <= horizon; now += 10 * sim.Millisecond {
		eng.RunUntil(now)
		dev.Tick(now)
	}

	st := inj.Stats()
	fmt.Printf("injected: %d correctable errors, %d rank kill(s)\n",
		st.CorrectableErrors, st.RankKills)
	snap := d.Registry().Snapshot()
	fmt.Printf("health:   %.0f storms detected, %.0f ranks auto-retired\n",
		snap["core.health.storms"], snap["core.health.auto_retires"])
	for _, id := range d.RetiredRanks() {
		fmt.Printf("          retired ch%d/rk%d\n", id.Channel, id.Rank)
	}
	fmt.Println("\nafter healing:", dev.PowerSnapshot(horizon))
	fmt.Printf("usable capacity: %s\n", dram.FormatBytes(dev.UsableBytes()))

	// The tenants never noticed: every address still resolves and reads.
	for _, base := range bases {
		if _, err := dev.Read(base, horizon); err != nil {
			log.Fatalf("data loss at %#x: %v", base, err)
		}
	}
	if err := dev.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nzero data loss: all VM addresses readable; invariants hold")
}
