// Translation dissects the HPA→DPA path: it shows the segment mapping
// cache hierarchy filtering translations (L1 hit / L2 hit / full three-level
// walk), the Figure 6 address layout, and how host-transparent migration
// changes the physical placement without changing host addresses.
package main

import (
	"fmt"
	"log"

	"dtl"
	"dtl/internal/core"
	"dtl/internal/dram"
)

func main() {
	geom := dtl.Geometry{
		Channels:        4,
		RanksPerChannel: 4,
		BanksPerRank:    16,
		SegmentBytes:    2 << 20,
		RankBytes:       256 << 20,
	}
	cfg := core.DefaultConfig(geom)
	cfg.AUBytes = 64 << 20
	dev, err := dtl.Open(dtl.WithConfig(cfg))
	if err != nil {
		log.Fatal(err)
	}
	d := dev.Core()
	codec := d.Device().Codec()

	alloc, err := dev.AllocateVM(1, 0, 64<<20, 0)
	if err != nil {
		log.Fatal(err)
	}
	base := alloc.AUBases[0]

	fmt.Println("HPA -> DPA translation for the first 8 segments:")
	fmt.Println("   (first access: full walk; repeat: L1 SMC hit)")
	now := dtl.Time(0)
	for i := 0; i < 8; i++ {
		hpa := base + dtl.HPA(int64(i)*2<<20)
		now += 1000
		res1, err := d.Access(dram.HPA(hpa), false, now)
		if err != nil {
			log.Fatal(err)
		}
		now += 1000
		res2, err := d.Access(dram.HPA(hpa), false, now)
		if err != nil {
			log.Fatal(err)
		}
		loc := codec.DecodeDSN(codec.SegmentOf(res1.DPA))
		fmt.Printf("  hpa %#010x -> dpa %#011x  ch%d rk%d idx%-4d  walk %v, cached %v\n",
			int64(hpa), int64(res1.DPA), loc.Channel, loc.Rank, loc.Index,
			res1.TranslationLat, res2.TranslationLat)
	}

	fmt.Printf("\nSMC after warm-up: %+v\n", dev.SMCStats())

	// Host-transparent migration: a large neighbor VM straddles our rank
	// and another, plus a third small VM pins the other rank. When the
	// large VM leaves, both remaining ranks are nearly empty, so the
	// consolidation drains OUR segments into the other rank — the host
	// addresses keep working, but the physical rank changes.
	if _, err := dev.AllocateVM(2, 0, 1920<<20, now); err != nil {
		log.Fatal(err)
	}
	if _, err := dev.AllocateVM(3, 0, 64<<20, now); err != nil {
		log.Fatal(err)
	}
	now += 1000
	if err := dev.DeallocateVM(2, now); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter consolidation (%d segments migrated):\n", dev.Stats().SegmentsMigrated)
	for i := 0; i < 4; i++ {
		hpa := base + dtl.HPA(int64(i)*2<<20)
		now += 1000
		res, err := d.Access(dram.HPA(hpa), false, now)
		if err != nil {
			log.Fatal(err)
		}
		loc := codec.DecodeDSN(codec.SegmentOf(res.DPA))
		fmt.Printf("  hpa %#010x -> dpa %#011x  ch%d rk%d idx%-4d (same HPA, possibly new rank)\n",
			int64(hpa), int64(res.DPA), loc.Channel, loc.Rank, loc.Index)
	}
	fmt.Println("\nfinal:", dev.PowerSnapshot(now))
}
