// Cloudsched drives the paper's headline scenario end to end: an Azure-like
// VM population scheduled onto a 384 GiB CXL memory device for six hours,
// with DTL's rank-level power-down consolidating unallocated capacity at
// every VM deallocation. It prints the power timeline and the energy saved
// versus an always-on baseline (the Figure 12 experiment, via the public
// API).
package main

import (
	"fmt"
	"log"

	"dtl"
	"dtl/internal/core"
	"dtl/internal/dram"
	"dtl/internal/sim"
	"dtl/internal/vmtrace"
)

func main() {
	geom := dtl.Geometry{
		Channels:        4,
		RanksPerChannel: 8,
		BanksPerRank:    16,
		SegmentBytes:    2 << 20,
		RankBytes:       12 << 30, // 384 GiB total
	}
	dev, err := dtl.Open(dtl.WithConfig(core.DefaultConfig(geom)))
	if err != nil {
		log.Fatal(err)
	}

	cfg := vmtrace.DefaultGenConfig()
	cfg.NumVMs = 200
	vms := vmtrace.Generate(cfg)
	srv := vmtrace.Server{VCPUs: 48, MemBytes: geom.TotalBytes()}
	events, _, err := vmtrace.Schedule(vms, srv, cfg.Horizon)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scheduling %d VMs over %v on %s\n\n", len(vms), cfg.Horizon, dram.FormatBytes(srv.MemBytes))
	fmt.Println("time      liveVMs  allocated   active-ranks/ch  background-power")

	baselineBG := float64(geom.TotalRanks()) // all ranks standby
	var techEnergy, baseEnergy float64
	var lastT dtl.Time

	ei := 0
	for t := sim.Time(0); t <= cfg.Horizon; t += vmtrace.Interval {
		for ei < len(events) && events[ei].At <= t {
			ev := events[ei]
			ei++
			if ev.Depart {
				if err := dev.DeallocateVM(dtl.VMID(ev.VM.ID), t); err != nil {
					log.Fatal(err)
				}
			} else if _, err := dev.AllocateVM(dtl.VMID(ev.VM.ID), dtl.HostID(ev.VM.ID%16), ev.VM.MemBytes, t); err != nil {
				log.Fatal(err)
			}
		}
		snap := dev.PowerSnapshot(t)
		span := float64(t - lastT)
		techEnergy += snap.BackgroundPower * span
		baseEnergy += baselineBG * span
		lastT = t
		if t%(30*sim.Minute) == 0 {
			fmt.Printf("%7v  %7d  %10s  %15d  %15.1f\n",
				t, dev.LiveVMs(), dram.FormatBytes(dev.AllocatedBytes()),
				snap.ActiveRanksPerChannel, snap.BackgroundPower)
		}
	}

	saving := 1 - techEnergy/baseEnergy
	st := dev.Stats()
	fmt.Printf("\nbackground energy saving vs always-on: %.1f%%\n", 100*saving)
	fmt.Printf("power-down events: %d, reactivations: %d, migrated: %s\n",
		st.PowerDownEvents, st.ReactivateEvents, dram.FormatBytes(st.BytesMigrated))
}
