// Observability demonstrates the trace/metrics tooling end to end without
// leaving Go: it runs the Figure 12 power-down schedule at quick scale with
// the streaming JSONL trace sink and the metrics CSV sampler enabled, then
// re-reads the trace the way `dtlstat read` does and shows that the offline
// summary reproduces the live run — residency shares, migration latencies,
// and the background-energy proxy all come back out of the trace file.
//
// The equivalent shell session is:
//
//	dtlsim -exp fig12 -quick -trace run.jsonl -trace-format jsonl -metrics run.csv
//	dtlstat read run.jsonl
package main

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"

	"dtl/internal/experiments"
	"dtl/internal/metrics"
	"dtl/internal/telemetry"
)

func main() {
	dir, err := os.MkdirTemp("", "dtl-observability")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	tracePath := filepath.Join(dir, "run.jsonl")
	metricsPath := filepath.Join(dir, "run.csv")

	// One quick fig12 run with both sinks attached. The JSONL sink streams:
	// every event reaches the file even if the run outgrows the in-memory
	// trace ring.
	fig12, ok := experiments.ByID("fig12")
	if !ok {
		log.Fatal("fig12 runner not registered")
	}
	opts := experiments.Options{
		Quick:       true,
		Seed:        1,
		Out:         io.Discard, // the live report; we only want the sinks here
		TracePath:   tracePath,
		TraceFormat: telemetry.FormatJSONL,
		MetricsPath: metricsPath,
	}
	experiments.RunAll([]experiments.Runner{fig12}, opts, 1)

	lines, bytes := fileShape(tracePath)
	fmt.Printf("trace:   %s  (%d JSONL records, %d bytes)\n", filepath.Base(tracePath), lines, bytes)
	lines, bytes = fileShape(metricsPath)
	fmt.Printf("metrics: %s  (%d CSV rows, %d bytes)\n\n", filepath.Base(metricsPath), lines, bytes)

	// Re-read the trace offline, exactly as `dtlstat read` would.
	f, err := os.Open(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	s, err := telemetry.SummarizeTrace(f)
	if err != nil {
		log.Fatal(err)
	}

	ranks := s.Ranks()
	fmt.Printf("summarized from trace: %d ranks, run %.0f s\n", len(ranks), s.RankDuration(ranks[0])/1e6)

	// Device-wide residency per power state.
	totals := map[string]float64{}
	var total float64
	for _, rank := range ranks {
		for state, us := range s.Residency[rank] {
			totals[state] += us
		}
		total += s.RankDuration(rank)
	}
	states := make([]string, 0, len(totals))
	for st := range totals {
		states = append(states, st)
	}
	sort.Strings(states)
	for _, st := range states {
		fmt.Printf("  %-14s %5.1f%% of rank-time\n", st, 100*totals[st]/total)
	}

	fmt.Printf("\nmigrations: %d", len(s.MigrationsUs))
	if len(s.MigrationsUs) > 0 {
		sum := metrics.Summarize(s.MigrationsUs)
		fmt.Printf("  (P50 %.1f us, P99 %.1f us)", sum.P50, sum.P99)
	}
	fmt.Printf("\nenergy proxy: %.3g weight-us (standby=1.0, self-refresh=0.2, mpsm=0.068)\n",
		s.EnergyProxy(nil))

	// The payoff: a second identical run diffs to exactly zero, which is what
	// lets CI gate policy changes with `dtlstat diff`.
	tracePath2 := filepath.Join(dir, "run2.jsonl")
	opts.TracePath = tracePath2
	experiments.RunAll([]experiments.Runner{fig12}, opts, 1)
	f2, err := os.Open(tracePath2)
	if err != nil {
		log.Fatal(err)
	}
	defer f2.Close()
	s2, err := telemetry.SummarizeTrace(f2)
	if err != nil {
		log.Fatal(err)
	}
	d := telemetry.DiffSummaries(s, s2)
	bad := d.Check(telemetry.DiffTolerance{Share: 1e-9, LatFrac: 1e-9, EnergyFrac: 1e-9})
	if len(bad) != 0 {
		log.Fatalf("repeated run drifted: %v", bad)
	}
	fmt.Println("\nrepeated run diffs to zero: deterministic, CI-gateable")
}

// fileShape reports a sink file's line and byte counts.
func fileShape(path string) (lines, bytes int) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
		bytes += len(sc.Bytes()) + 1
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	return lines, bytes
}
