#!/bin/sh
# Gate benchmark regressions against the committed baseline.
#
# Usage:
#   scripts/bench_check.sh [baseline.json] [factor] [count]
#
# Re-runs every benchmark named in the baseline (BENCH_seed.json by default)
# and fails if any averages worse than factor x the baseline's ns_per_op
# (default 3x — wide enough that shared-runner noise never trips it, tight
# enough that a real fast-path regression, like an allocation sneaking back
# into the event loop, does).
set -eu

cd "$(dirname "$0")/.."

baseline="${1:-BENCH_seed.json}"
factor="${2:-3}"
count="${3:-2}"

pattern="$(awk -F'"' '/"name":/ {printf "%s%s", sep, $4; sep="|"}' "$baseline")"
if [ -z "$pattern" ]; then
    echo "bench_check: no benchmarks found in $baseline" >&2
    exit 2
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "^($pattern)\$" -benchmem -count "$count" ./... | tee "$tmp" >&2

awk -v factor="$factor" '
NR == FNR {
    # Baseline entries: {"name": "...", ..., "ns_per_op": N, ...}
    if ($0 ~ /"name":/) {
        name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
        ns = $0; sub(/.*"ns_per_op": /, "", ns); sub(/[,}].*/, "", ns)
        base[name] = ns + 0
    }
    next
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    n[name]++
    sum[name] += $3
}
END {
    fail = 0
    for (name in base) {
        if (!(name in n)) {
            printf "FAIL %-28s did not run (baseline stale? regenerate with bench_baseline.sh)\n", name
            fail = 1
            continue
        }
        cur = sum[name] / n[name]
        limit = base[name] * factor
        verdict = (cur > limit) ? "FAIL" : "ok"
        printf "%-4s %-28s %10.2f ns/op   baseline %10.2f   limit %10.2f\n", verdict, name, cur, base[name], limit
        if (cur > limit) fail = 1
    }
    exit fail
}' "$baseline" "$tmp"
