#!/bin/sh
# Gate benchmark regressions against the committed baseline.
#
# Usage:
#   scripts/bench_check.sh [baseline.json] [factor] [count]
#
# Re-runs every benchmark named in the baseline (BENCH_seed.json by default)
# and fails if any averages worse than factor x the baseline's ns_per_op
# (default 3x — wide enough that shared-runner noise never trips it, tight
# enough that a real fast-path regression, like an allocation sneaking back
# into the event loop, does).
#
# Failure modes that must NOT pass silently:
#   - `go test` itself failing (build break, benchmark panic): POSIX sh has
#     no pipefail, so the pipeline below would otherwise report tee's status;
#     the real status is captured through a side file instead.
#   - a baseline name missing from the run (renamed or deleted benchmark):
#     every baseline entry must produce at least one result line.
set -eu

cd "$(dirname "$0")/.."

baseline="${1:-BENCH_seed.json}"
factor="${2:-3}"
count="${3:-2}"

pattern="$(awk -F'"' '/"name":/ {printf "%s%s", sep, $4; sep="|"}' "$baseline")"
if [ -z "$pattern" ]; then
    echo "bench_check: no benchmarks found in $baseline" >&2
    exit 2
fi

tmp="$(mktemp)"
status="$(mktemp)"
trap 'rm -f "$tmp" "$status"' EXIT

# Capture go test's own exit status through $status: `go test | tee` alone
# reports tee's status, which would let a build break or benchmark panic
# masquerade as a pass.
{ go test -run '^$' -bench "^($pattern)\$" -benchmem -count "$count" ./... \
    || echo "$?" > "$status"; } | tee "$tmp" >&2
if [ -s "$status" ]; then
    echo "bench_check: FAIL: go test exited with status $(cat "$status") (see output above)" >&2
    exit 1
fi

awk -v factor="$factor" '
NR == FNR {
    # Baseline entries: {"name": "...", ..., "ns_per_op": N, ...}
    if ($0 ~ /"name":/) {
        name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
        ns = $0; sub(/.*"ns_per_op": /, "", ns); sub(/[,}].*/, "", ns)
        base[name] = ns + 0
    }
    next
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    n[name]++
    sum[name] += $3
}
END {
    fail = 0
    for (name in base) {
        if (!(name in n)) {
            printf "bench_check: FAIL: %s is in the baseline but produced no result — renamed, deleted, or its package did not build; fix it or regenerate with scripts/bench_baseline.sh\n", name | "cat 1>&2"
            fail = 1
            continue
        }
        cur = sum[name] / n[name]
        limit = base[name] * factor
        verdict = (cur > limit) ? "FAIL" : "ok"
        printf "%-4s %-28s %10.2f ns/op   baseline %10.2f   limit %10.2f\n", verdict, name, cur, base[name], limit
        if (cur > limit) fail = 1
    }
    exit fail
}' "$baseline" "$tmp"
