#!/bin/sh
# Gate the rack experiment's determinism and its headline energy claim at
# the CLI layer.
#
# Usage:
#   scripts/rack_check.sh [expanders]
#
# Builds dtlsim and dtlstat, runs the quick 4-expander (default) rack A/B
# three times — serial, with -parallel 4, and a plain re-run — and cmp's
# every artifact byte for byte (the rack loop is serial by design, so the
# -parallel knob must be inert). Then:
#   - `dtlstat diff -share 1e-9 -attr 1e-9` on the identical re-run pair
#     must PASS: the byte-determinism invariant restated as an attribution
#     identity;
#   - `dtlstat diff -attr` on the pack-vs-spread pair must FAIL: the two
#     policies shift fabric-copy/fabric-stall attribution by design, and a
#     diff that cannot see that shift would be blind to real regressions;
#   - the pack leg's energy proxy must not exceed the spread leg's — the
#     experiment's headline claim (placement density sets the
#     background-power floor), checked from the -json metrics.
# The in-process tests (internal/experiments/rack_test.go) cover the same
# contracts under go test; this script covers the flag plumbing end to end.
set -eu

cd "$(dirname "$0")/.."

expanders="${1:-4}"

# The flag layer caps -parallel at GOMAXPROCS; lift the cap so a single-core
# runner still exercises the parallel scheduling path the cmp's are about.
GOMAXPROCS=4
export GOMAXPROCS

work="$(mktemp -d)"
sim="$work/dtlsim"
stat="$work/dtlstat"
trap 'rm -f -r "$work"' EXIT

go build -o "$sim" ./cmd/dtlsim
go build -o "$stat" ./cmd/dtlstat

run_rack() { # dir policy extra-flags...
    d="$1"; pol="$2"; shift 2
    mkdir -p "$d"
    "$sim" -exp rack -quick -rack "$expanders" -fabric "policy=$pol" "$@" \
        -trace "$d/trace.jsonl" -trace-format jsonl \
        -ledger "$d/ledger.json" -metrics "$d/metrics.csv" \
        -json > "$d/result.json"
}

echo "rack_check: $expanders-expander pack run, serial vs -parallel 4 vs re-run" >&2
run_rack "$work/pack1" pack
run_rack "$work/pack2" pack -parallel 4
run_rack "$work/pack3" pack
for art in result.json trace.jsonl ledger.json metrics.csv; do
    for other in pack2 pack3; do
        cmp "$work/pack1/$art" "$work/$other/$art" || {
            echo "rack_check: FAIL: $art differs between pack1 and $other" >&2
            exit 1
        }
    done
done

echo "rack_check: attribution identity on the re-run pair" >&2
"$stat" diff -share 1e-9 -attr 1e-9 \
    "$work/pack1/trace.jsonl" "$work/pack3/trace.jsonl" > /dev/null || {
    echo "rack_check: FAIL: identical re-runs drifted in residency or attribution" >&2
    exit 1
}

echo "rack_check: spread leg and pack-vs-spread attribution shift" >&2
run_rack "$work/spread" spread
if "$stat" diff -attr 1e-9 \
    "$work/spread/trace.jsonl" "$work/pack1/trace.jsonl" > "$work/diff.txt" 2>&1; then
    echo "rack_check: FAIL: diff -attr saw no shift between pack and spread legs" >&2
    cat "$work/diff.txt" >&2
    exit 1
fi
grep -q 'fabric' "$work/diff.txt" || {
    echo "rack_check: FAIL: pack-vs-spread diff does not mention the fabric causes" >&2
    cat "$work/diff.txt" >&2
    exit 1
}

echo "rack_check: pack <= spread on the energy proxy" >&2
# The two -json results carry the same metrics (the A/B runs both legs);
# read the headline pair out of the pack run's report.
awk '
/"energy_proxy_pack"/   { gsub(/[^0-9.eE+-]/, "", $2); pack = $2 + 0 }
/"energy_proxy_spread"/ { gsub(/[^0-9.eE+-]/, "", $2); spread = $2 + 0 }
END {
    if (pack <= 0 || spread <= 0) {
        printf "rack_check: FAIL: degenerate energy proxies pack=%g spread=%g\n", pack, spread
        exit 1
    }
    if (pack > spread) {
        printf "rack_check: FAIL: pack energy proxy %g exceeds spread %g\n", pack, spread
        exit 1
    }
    printf "rack_check: pack %g <= spread %g (%.1f%% saved)\n", pack, spread, 100 * (1 - pack / spread)
}' "$work/pack1/result.json" >&2

echo "rack_check: ok — byte-identical artifacts, attribution gates behave" >&2
