#!/bin/sh
# Emit the repository's benchmark baseline as JSON.
#
# Usage:
#   scripts/bench_baseline.sh [output.json] [bench-regexp] [count]
#
# Defaults write BENCH_seed.json in the repo root from the fast-path
# microbenchmarks that gate performance regressions (the experiment
# benchmarks are full runs and too slow for a routine baseline): the
# end-to-end translation benchmarks at the root plus the event-core and
# core-datapath benchmarks in internal packages. Compare a later run against
# the baseline with scripts/bench_check.sh (or any JSON-aware diff);
# ns_per_op within ~2% is noise.
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_seed.json}"
# Every baseline benchmark is named explicitly and the pattern is anchored
# below: an unanchored `-bench BenchmarkEngineStep` also matches
# BenchmarkEngineStepDeep (go test matches substrings), which once let two
# names share one set of averaged numbers in the seed baseline.
pattern="${2:-BenchmarkAccessPath|BenchmarkAttributedAccessPath|BenchmarkAllocDealloc|BenchmarkEngineStep|BenchmarkEngineStepDeep|BenchmarkFabricAccessPath|BenchmarkSMCHit|BenchmarkSMCMissWalk|BenchmarkSwapMigration|BenchmarkSerialRunAll|BenchmarkShardedRunAll|BenchmarkShardBarrier|BenchmarkTimelineRecord}"
count="${3:-5}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "^($pattern)\$" -benchmem -count "$count" ./... | tee "$tmp" >&2

# Parse `go test -bench` lines:
#   BenchmarkAccessPath-8   8242424   146.7 ns/op   0 B/op   0 allocs/op
# Repeated -count runs of the same benchmark are averaged.
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v go="$(go version | awk '{print $3}')" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    n[name]++
    ns[name] += $3
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "B/op")      bpo[name] += $i
        if ($(i+1) == "allocs/op") apo[name] += $i
    }
}
END {
    printf "{\n  \"generated\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", date, go
    first = 1
    for (name in n) names[++cnt] = name
    # Stable output order.
    for (i = 1; i <= cnt; i++)
        for (j = i + 1; j <= cnt; j++)
            if (names[j] < names[i]) { t = names[i]; names[i] = names[j]; names[j] = t }
    for (i = 1; i <= cnt; i++) {
        name = names[i]
        if (!first) printf ",\n"
        first = 0
        printf "    {\"name\": \"%s\", \"runs\": %d, \"ns_per_op\": %.2f, \"bytes_per_op\": %.1f, \"allocs_per_op\": %.1f}", \
            name, n[name], ns[name] / n[name], bpo[name] / n[name], apo[name] / n[name]
    }
    printf "\n  ]\n}\n"
}' "$tmp" > "$out"

# Fail loudly if two entries carry verbatim-identical numbers: distinct
# benchmarks never tie to the hundredth of a nanosecond across averaged
# runs, so a duplicate means the pattern matched one benchmark under two
# names (or a copy-paste slipped into the baseline).
dupes="$(awk -F'"' '
/"name":/ {
    name = $4
    line = $0
    sub(/.*"ns_per_op": /, "", line)
    if (seen[line]) {
        printf "%s and %s share identical numbers: %s\n", seen[line], name, line
        bad = 1
    }
    seen[line] = name
}
END { exit bad }' "$out")" || {
    echo "bench_baseline.sh: duplicated benchmark entries in $out:" >&2
    echo "$dupes" >&2
    exit 1
}

echo "wrote $out" >&2
