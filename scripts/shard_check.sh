#!/bin/sh
# Cross-check sharded execution against the serial oracle at the CLI layer.
#
# Usage:
#   scripts/shard_check.sh [shards]
#
# Builds dtlsim, runs the full quick suite serially and with -shards N
# (default 4), and cmp's the reports byte for byte; then runs fig2 (metrics
# CSV via the sharded replay) and fig12 (jsonl trace + ledger + metrics,
# with an ECC storm and a mid-run rank kill forcing cross-rank migrations)
# and cmp's every artifact. The in-process test matrix
# (TestShardedMatchesSerial) covers the same contract under -race; this
# script covers the flag plumbing end to end, exactly the way a user runs
# it. Any diff is a determinism bug, never noise.
set -eu

cd "$(dirname "$0")/.."

shards="${1:-4}"

# The flag layer caps -shards at GOMAXPROCS; lift the cap so a single-core
# runner still exercises multi-shard scheduling (output is identical at
# every count, so the cap is about contention, not correctness).
GOMAXPROCS="$shards"
export GOMAXPROCS

work="$(mktemp -d)"
bin="$work/dtlsim"
trap 'rm -f -r "$work"' EXIT

go build -o "$bin" ./cmd/dtlsim

echo "shard_check: full quick suite, serial vs -shards $shards" >&2
"$bin" -exp all -quick > "$work/all_serial.txt"
"$bin" -exp all -quick -shards "$shards" > "$work/all_sharded.txt"
cmp "$work/all_serial.txt" "$work/all_sharded.txt" || {
    echo "shard_check: FAIL: suite report differs between serial and -shards $shards" >&2
    exit 1
}

faults='seed=7;storm:ch1/rk2:at=90m,rate=2000,dur=60s;kill:ch0/rk0:at=3h'
for exp in fig2 fig12; do
    f=''
    if [ "$exp" = fig12 ]; then f="$faults"; fi
    echo "shard_check: $exp artifacts, serial vs -shards $shards" >&2
    for mode in serial sharded; do
        d="$work/$exp.$mode"
        mkdir -p "$d"
        extra=''
        if [ "$mode" = sharded ]; then extra="-shards $shards"; fi
        # shellcheck disable=SC2086
        "$bin" -exp "$exp" -quick -faults "$f" $extra \
            -metrics "$d/metrics.csv" \
            -trace "$d/trace.jsonl" -trace-format jsonl \
            -ledger "$d/ledger.json" > "$d/report.txt"
    done
    for art in report.txt metrics.csv trace.jsonl ledger.json; do
        a="$work/$exp.serial/$art"
        b="$work/$exp.sharded/$art"
        if [ -e "$a" ] || [ -e "$b" ]; then
            cmp "$a" "$b" || {
                echo "shard_check: FAIL: $exp $art differs between serial and -shards $shards" >&2
                exit 1
            }
        fi
    done
done

echo "shard_check: ok — byte-identical at -shards $shards" >&2
