package dtl

// The benchmark harness regenerates every table and figure of the paper at
// reduced (Quick) scale, reporting each experiment's headline metric through
// b.ReportMetric so `go test -bench` output doubles as a results summary.
// Ablation benchmarks cover the design choices DESIGN.md calls out: segment
// size, SMC sizing, profiling threshold, TSP timeout, and rank-group versus
// per-rank power-down granularity.

import (
	"testing"

	"dtl/internal/core"
	"dtl/internal/dram"
	"dtl/internal/experiments"
	"dtl/internal/trace"
)

// benchExperiment runs one registered experiment per iteration and reports
// its metrics.
func benchExperiment(b *testing.B, id string, keys ...string) {
	b.Helper()
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	opts := experiments.Options{Quick: true, Seed: 1}
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = r.Run(opts)
	}
	for _, k := range keys {
		b.ReportMetric(res.Metrics[k], k)
	}
}

func BenchmarkFig1(b *testing.B) {
	benchExperiment(b, "fig1", "mean_mem_utilization")
}

func BenchmarkFig2(b *testing.B) {
	benchExperiment(b, "fig2", "slowdown_2ranks")
}

func BenchmarkFig5(b *testing.B) {
	benchExperiment(b, "fig5", "loss_local", "loss_cxl")
}

func BenchmarkFig6(b *testing.B) {
	benchExperiment(b, "fig6", "channel_interleaved", "rank_bits_msb")
}

func BenchmarkFig9(b *testing.B) {
	benchExperiment(b, "fig9", "mix8_ge4mb_share")
}

func BenchmarkFig10(b *testing.B) {
	benchExperiment(b, "fig10", "cold_2mb_mean", "cold_4mb_mean")
}

func BenchmarkFig11(b *testing.B) {
	benchExperiment(b, "fig11", "bg_norm_2ranks")
}

func BenchmarkFig12(b *testing.B) {
	benchExperiment(b, "fig12", "energy_saving", "perf_overhead")
}

func BenchmarkFig13(b *testing.B) {
	benchExperiment(b, "fig13", "background_saving", "total_saving")
}

func BenchmarkFig14(b *testing.B) {
	benchExperiment(b, "fig14", "saving_26gib-5grp", "saving_34gib-5grp")
}

func BenchmarkFig15(b *testing.B) {
	benchExperiment(b, "fig15", "total_26gib-5grp", "total_50gib-8grp")
}

func BenchmarkTable2(b *testing.B) {
	benchExperiment(b, "table2", "mpsm")
}

func BenchmarkTable4(b *testing.B) {
	benchExperiment(b, "table4", "mapki_graph-analytics")
}

func BenchmarkTable5(b *testing.B) {
	benchExperiment(b, "table5", "sram_4tb_mb", "dram_4tb_mb")
}

func BenchmarkTable6(b *testing.B) {
	benchExperiment(b, "table6", "power_384gb_mw")
}

func BenchmarkAMAT(b *testing.B) {
	benchExperiment(b, "amat", "translation_ns", "amat_ns")
}

// --- Microbenchmarks of the core datapath ---

// BenchmarkAccessPath measures the per-access cost of the full DTL pipeline
// (SMC lookup, translation, timing model, hotness bookkeeping).
func BenchmarkAccessPath(b *testing.B) {
	cfg := core.DefaultConfig(smallGeometry())
	cfg.AUBytes = 16 * dram.MiB
	dev, err := Open(WithConfig(cfg))
	if err != nil {
		b.Fatal(err)
	}
	alloc, err := dev.AllocateVM(1, 0, 512*dram.MiB, 0)
	if err != nil {
		b.Fatal(err)
	}
	p, _ := trace.ProfileByName("data-caching")
	p.FootprintBytes = 512 * dram.MiB
	g := trace.MustGenerator(p, 1)
	now := Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := g.Next()
		if _, err := dev.Read(alloc.AUBases[0]+HPA(a.Addr), now); err != nil {
			b.Fatal(err)
		}
		now += 10
	}
}

// BenchmarkAttributedAccessPath is BenchmarkAccessPath with the attribution
// ledger attached: every access additionally charges its latency to the
// owning (vm, rank, cause) ledger cells. The gate (3x AccessPath's baseline,
// 0 allocs/op) bounds the observability tax on the hot path.
func BenchmarkAttributedAccessPath(b *testing.B) {
	cfg := core.DefaultConfig(smallGeometry())
	cfg.AUBytes = 16 * dram.MiB
	dev, err := Open(WithConfig(cfg))
	if err != nil {
		b.Fatal(err)
	}
	dev.Core().StartLedger()
	alloc, err := dev.AllocateVM(1, 0, 512*dram.MiB, 0)
	if err != nil {
		b.Fatal(err)
	}
	p, _ := trace.ProfileByName("data-caching")
	p.FootprintBytes = 512 * dram.MiB
	g := trace.MustGenerator(p, 1)
	now := Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := g.Next()
		if _, err := dev.Read(alloc.AUBases[0]+HPA(a.Addr), now); err != nil {
			b.Fatal(err)
		}
		now += 10
	}
}

// BenchmarkAllocDealloc measures the VM lifecycle including the power-down
// consolidation check.
func BenchmarkAllocDealloc(b *testing.B) {
	cfg := core.DefaultConfig(smallGeometry())
	cfg.AUBytes = 16 * dram.MiB
	dev, err := Open(WithConfig(cfg))
	if err != nil {
		b.Fatal(err)
	}
	now := Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 1000
		if _, err := dev.AllocateVM(VMID(i), 0, 64*dram.MiB, now); err != nil {
			b.Fatal(err)
		}
		now += 1000
		if err := dev.DeallocateVM(VMID(i), now); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (design choices of §4.1, §3.4, §3.3) ---
// Each delegates to the registered abl-* experiment so `go test -bench`
// and `dtlsim -exp abl-...` report the same sweeps.

// BenchmarkAblationSegmentSize sweeps the translation granularity (§4.1).
func BenchmarkAblationSegmentSize(b *testing.B) {
	benchExperiment(b, "abl-segsize", "cold_1mb", "cold_2mb", "cold_4mb", "cold_8mb")
}

// BenchmarkAblationSMC sweeps the segment-mapping-cache sizing (§6.1).
func BenchmarkAblationSMC(b *testing.B) {
	benchExperiment(b, "abl-smc",
		"translation_ns_16x256", "translation_ns_64x1024", "translation_ns_256x4096")
}

// BenchmarkAblationProfilingThreshold sweeps the §3.4 idle threshold.
func BenchmarkAblationProfilingThreshold(b *testing.B) {
	benchExperiment(b, "abl-threshold", "sr_enters_50us", "sr_enters_100us", "sr_enters_400us")
}

// BenchmarkAblationTSPTimeout sweeps the CLOCK-walk budget (§3.4).
func BenchmarkAblationTSPTimeout(b *testing.B) {
	benchExperiment(b, "abl-tsp", "sr_enters_b4", "sr_enters_b32", "sr_enters_b256")
}

// BenchmarkAblationRankGroup compares power-down granularities (§3.3).
func BenchmarkAblationRankGroup(b *testing.B) {
	benchExperiment(b, "abl-rankgroup", "bg_group_6free", "bg_perrank_6free")
}
